//! Periodic virtual-time timers — the monitor thread — and open-loop
//! event sources.
//!
//! The real Quartz monitor is an OS thread that "periodically wakes up
//! and sends POSIX signals to interrupt each application thread whose
//! current epoch time length exceeds a configurable maximum" (paper
//! §3.1). We model it as a periodic callback in virtual time, evaluated
//! lazily at the running thread's operation boundaries — which reproduces
//! the paper's observation that "wake-up events and thread epoch
//! completion times may slightly drift apart".
//!
//! The same seam also drives **open-loop event sources**
//! ([`crate::Engine::add_open_loop_source`]): callbacks that inject
//! payloads into [`SimChannel`]s via [`TimerApi::send`] and reschedule
//! themselves with variable gaps via [`TimerApi::reschedule_in`]. When
//! every simulated thread is blocked, the scheduler fires the earliest
//! source directly (instead of declaring a deadlock), so arrival
//! injection never depends on a runnable thread.

use quartz_platform::time::{Duration, SimTime};

use crate::channel::SimChannel;
use crate::engine::ThreadId;
use crate::ChannelId;

/// What a timer callback may do: inspect live threads, mark them as
/// signalled, inject channel payloads, and control its own schedule.
/// Signal flags are consumed at each target thread's next operation
/// boundary, where [`crate::Hooks::on_signal`] runs; channel injections
/// wake parked receivers immediately at the firing instant.
pub struct TimerApi<'a> {
    pub(crate) fire_time: SimTime,
    pub(crate) live: &'a [ThreadId],
    pub(crate) signalled: Vec<ThreadId>,
    pub(crate) defer: Duration,
    /// One entry per payload pushed into a channel buffer this firing.
    pub(crate) injected: Vec<ChannelId>,
    /// Channels to close at the firing instant.
    pub(crate) closed: Vec<ChannelId>,
    /// Overrides the gap to the next firing (else the period is used).
    pub(crate) next_gap: Option<Duration>,
    /// The callback declared itself exhausted; deregister the timer.
    pub(crate) stopped: bool,
}

impl TimerApi<'_> {
    /// The virtual instant this firing represents.
    pub fn fire_time(&self) -> SimTime {
        self.fire_time
    }

    /// Threads currently alive (running, runnable or blocked).
    pub fn live_threads(&self) -> &[ThreadId] {
        self.live
    }

    /// Sends a signal to `thread`, delivered at its next operation
    /// boundary.
    pub fn signal_thread(&mut self, thread: ThreadId) {
        self.signalled.push(thread);
    }

    /// Pushes the *next* firing of this timer late by `extra` beyond its
    /// normal period — a slipped/late timer, e.g. under injected
    /// scheduling faults. Cumulative if called more than once.
    pub fn defer_next(&mut self, extra: Duration) {
        self.defer += extra;
    }

    /// Injects `value` into `ch` at the firing instant: the payload's
    /// arrival time *is* [`TimerApi::fire_time`], and a receiver parked
    /// in [`chan_recv`](crate::ThreadCtx::chan_recv) wakes at that
    /// instant plus the hand-off cost. This is how an open-loop source
    /// delivers arrivals without any sim thread running.
    pub fn send<T: Send>(&mut self, ch: &SimChannel<T>, value: T) {
        ch.push(value);
        self.injected.push(ch.id());
    }

    /// Closes `ch` at the firing instant: parked receivers wake and
    /// drain; future `recv`s return `None` once the buffer empties.
    pub fn close<T: Send>(&mut self, ch: &SimChannel<T>) {
        self.closed.push(ch.id());
    }

    /// Schedules the *next* firing `gap` after this one instead of the
    /// registered period — variable inter-arrival gaps for open-loop
    /// sources. Applies to this firing only.
    pub fn reschedule_in(&mut self, gap: Duration) {
        assert!(!gap.is_zero(), "timer gap must be non-zero");
        self.next_gap = Some(gap);
    }

    /// Deregisters this timer: it never fires again. For an open-loop
    /// source this also releases its feed on the channels named at
    /// registration, closing any channel left with no live producer.
    pub fn stop(&mut self) {
        self.stopped = true;
    }
}

/// A periodic callback run by the engine.
pub(crate) struct TimerRec {
    pub period: Duration,
    pub next_fire: SimTime,
    pub callback: Box<dyn FnMut(&mut TimerApi<'_>) + Send>,
    /// Whether the scheduler may fire this timer when no thread is
    /// runnable (open-loop event sources).
    pub wake: bool,
    /// Channels this timer feeds (indices into `SchedState::channels`),
    /// released when the callback stops itself.
    pub feeds: Vec<usize>,
}
