//! Periodic virtual-time timers — the monitor thread.
//!
//! The real Quartz monitor is an OS thread that "periodically wakes up
//! and sends POSIX signals to interrupt each application thread whose
//! current epoch time length exceeds a configurable maximum" (paper
//! §3.1). We model it as a periodic callback in virtual time, evaluated
//! lazily at the running thread's operation boundaries — which reproduces
//! the paper's observation that "wake-up events and thread epoch
//! completion times may slightly drift apart".

use quartz_platform::time::SimTime;

use crate::engine::ThreadId;

/// What a timer callback may do: inspect live threads and mark them as
/// signalled. The flags are consumed at each target thread's next
/// operation boundary, where [`crate::Hooks::on_signal`] runs.
pub struct TimerApi<'a> {
    pub(crate) fire_time: SimTime,
    pub(crate) live: &'a [ThreadId],
    pub(crate) signalled: Vec<ThreadId>,
    pub(crate) defer: quartz_platform::time::Duration,
}

impl TimerApi<'_> {
    /// The virtual instant this firing represents.
    pub fn fire_time(&self) -> SimTime {
        self.fire_time
    }

    /// Threads currently alive (running, runnable or blocked).
    pub fn live_threads(&self) -> &[ThreadId] {
        self.live
    }

    /// Sends a signal to `thread`, delivered at its next operation
    /// boundary.
    pub fn signal_thread(&mut self, thread: ThreadId) {
        self.signalled.push(thread);
    }

    /// Pushes the *next* firing of this timer late by `extra` beyond its
    /// normal period — a slipped/late timer, e.g. under injected
    /// scheduling faults. Cumulative if called more than once.
    pub fn defer_next(&mut self, extra: quartz_platform::time::Duration) {
        self.defer += extra;
    }
}

/// A periodic callback run by the engine.
pub(crate) struct TimerRec {
    pub period: quartz_platform::time::Duration,
    pub next_fire: SimTime,
    pub callback: Box<dyn FnMut(&mut TimerApi<'_>) + Send>,
}
