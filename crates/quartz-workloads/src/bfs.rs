//! Graph500-style level-synchronous BFS (extension).
//!
//! The paper's §7 reports preliminary validation of Quartz against HP's
//! hardware-based latency emulator using the Graph500 reference
//! implementation; this workload provides the equivalent kernel: a
//! top-down level-synchronous breadth-first search over the CSR graph,
//! reporting traversed edges per second (TEPS).

use quartz_platform::time::Duration;
use quartz_platform::NodeId;
use quartz_threadsim::ThreadCtx;

use crate::graph::{Graph, SimGraph};

/// BFS output.
#[derive(Clone, Debug, PartialEq)]
pub struct BfsResult {
    /// Time for the whole traversal.
    pub elapsed: Duration,
    /// Edges examined.
    pub edges_traversed: u64,
    /// Vertices reached (including the root).
    pub vertices_reached: u64,
    /// Depth of each vertex (`u32::MAX` if unreachable).
    pub depth: Vec<u32>,
}

impl BfsResult {
    /// Traversed edges per second of virtual time (the Graph500 metric).
    pub fn teps(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.edges_traversed as f64 / (self.elapsed.as_ns_f64() * 1e-9)
    }
}

/// Runs a BFS from `root`, structure arrays on `structure_node` and the
/// depth array on `depth_node`.
///
/// # Panics
///
/// Panics if `root` is out of range or allocation fails.
pub fn run_bfs(
    ctx: &mut ThreadCtx,
    graph: &Graph,
    root: usize,
    structure_node: NodeId,
    depth_node: NodeId,
) -> BfsResult {
    assert!(root < graph.n, "root out of range");
    let sim = SimGraph::load(ctx, graph, structure_node, depth_node);
    // Reuse rank_src as the depth array (8-byte entries).
    let depth_addr = |v: u64| sim.rank_src_addr(v);

    let mut depth = vec![u32::MAX; graph.n];
    depth[root] = 0;
    let mut frontier = vec![root as u32];
    let mut next = Vec::new();
    let mut edges_traversed = 0u64;
    let mut reached = 1u64;

    let t0 = ctx.now();
    let mut level = 0u32;
    let mut batch = Vec::with_capacity(8);
    while !frontier.is_empty() {
        level += 1;
        for &v in &frontier {
            let v = v as usize;
            ctx.load(sim.row_ptr_addr(v as u64));
            let start = graph.row_ptr[v] as u64;
            let end = graph.row_ptr[v + 1] as u64;
            let mut last_col_line = u64::MAX;
            let mut e = start;
            while e < end {
                batch.clear();
                let chunk = (e + 8).min(end);
                while e < chunk {
                    let cl = sim.col_idx_addr(e).line();
                    if cl != last_col_line {
                        ctx.load(sim.col_idx_addr(e));
                        last_col_line = cl;
                    }
                    let u = graph.col_idx[e as usize] as usize;
                    batch.push(depth_addr(u as u64));
                    edges_traversed += 1;
                    if depth[u] == u32::MAX {
                        depth[u] = level;
                        ctx.store(depth_addr(u as u64));
                        next.push(u as u32);
                        reached += 1;
                    }
                    e += 1;
                }
                // Independent depth probes issue together.
                ctx.load_batch(&batch);
            }
        }
        frontier.clear();
        std::mem::swap(&mut frontier, &mut next);
    }
    let elapsed = ctx.now().saturating_duration_since(t0);
    sim.free(ctx);
    BfsResult {
        elapsed,
        edges_traversed,
        vertices_reached: reached,
        depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use quartz_memsim::{MemSimConfig, MemorySystem};
    use quartz_platform::{Architecture, Platform, PlatformConfig};
    use quartz_threadsim::Engine;

    fn run(graph: Graph, root: usize) -> BfsResult {
        let platform =
            Platform::new(PlatformConfig::new(Architecture::IvyBridge).with_perfect_counters());
        let mem = Arc::new(MemorySystem::new(
            platform,
            MemSimConfig::default().without_jitter(),
        ));
        let out = Arc::new(parking_lot::Mutex::new(None));
        let o = Arc::clone(&out);
        Engine::new(mem).run(move |ctx| {
            *o.lock() = Some(run_bfs(ctx, &graph, root, NodeId(0), NodeId(0)));
        });
        let r = out.lock().take().unwrap();
        r
    }

    #[test]
    fn bfs_depths_are_consistent() {
        let g = Graph::random(400, 4_000, 17);
        let r = run(g.clone(), 0);
        assert_eq!(r.depth[0], 0);
        // Every edge (u, v) with u reached satisfies depth[v] <= depth[u]+1.
        for u in 0..g.n {
            if r.depth[u] == u32::MAX {
                continue;
            }
            for &v in g.neighbours(u) {
                assert!(
                    r.depth[v as usize] <= r.depth[u] + 1,
                    "triangle inequality at ({u},{v})"
                );
            }
        }
    }

    #[test]
    fn reaches_most_of_a_dense_graph() {
        let g = Graph::random(300, 6_000, 2);
        let r = run(g, 0);
        assert!(
            r.vertices_reached > 250,
            "dense graph mostly reachable: {}",
            r.vertices_reached
        );
        assert!(r.teps() > 0.0);
    }

    #[test]
    fn unreached_vertices_have_max_depth() {
        // A graph with an isolated tail (vertex with no in-edges from
        // the component of 0 is possible but not guaranteed; build a
        // tiny explicit graph instead).
        let g = Graph {
            n: 4,
            row_ptr: vec![0, 1, 2, 2, 2],
            col_idx: vec![1, 0],
        };
        let r = run(g, 0);
        assert_eq!(r.depth[0], 0);
        assert_eq!(r.depth[1], 1);
        assert_eq!(r.depth[2], u32::MAX);
        assert_eq!(r.depth[3], u32::MAX);
        assert_eq!(r.vertices_reached, 2);
    }
}
