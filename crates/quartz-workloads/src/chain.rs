//! Pointer-chain construction shared by the latency benchmarks.
//!
//! "The benchmark creates a pointer chain as an array of 64-bit integer
//! elements. The contents of each element dictate which one is read next;
//! and each element is read exactly once." (§4.4) We build a random
//! cyclic permutation with Sattolo's algorithm so a traversal of `n`
//! steps visits every element exactly once, with one element per cache
//! line so every step is a fresh line.

use quartz_memsim::Addr;
use quartz_threadsim::ThreadCtx;

/// Deterministic SplitMix64 stream used for chain shuffling.
#[derive(Clone, Debug)]
pub struct Rng(u64);

impl Rng {
    /// Seeds the stream.
    pub fn new(seed: u64) -> Self {
        Rng(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = self.0;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.next_u64() % bound
    }
}

/// A pointer chain over simulated memory: a random cyclic permutation of
/// `len` cache lines.
#[derive(Clone, Debug)]
pub struct Chain {
    base: Addr,
    next: Vec<u32>,
    cursor: u32,
}

impl Chain {
    /// Builds a chain of `len` lines in a fresh allocation on the chosen
    /// node, shuffled with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `len < 2`, `len` exceeds `u32` range, or allocation
    /// fails.
    pub fn build(ctx: &mut ThreadCtx, node: quartz_platform::NodeId, len: u64, seed: u64) -> Self {
        assert!(len >= 2, "chain needs at least two elements");
        assert!(len <= u32::MAX as u64, "chain too long");
        let base = ctx.alloc_on(node, len * 64);
        // Sattolo's algorithm: a uniform random cyclic permutation.
        let mut perm: Vec<u32> = (0..len as u32).collect();
        let mut rng = Rng::new(seed);
        let mut i = len as usize - 1;
        while i > 0 {
            let j = rng.below(i as u64) as usize;
            perm.swap(i, j);
            i -= 1;
        }
        // next[perm[k]] = perm[k+1] turns the permutation order into
        // chase order.
        let mut next = vec![0u32; len as usize];
        for k in 0..len as usize {
            let from = perm[k] as usize;
            let to = perm[(k + 1) % len as usize];
            next[from] = to;
        }
        Chain {
            base,
            next,
            cursor: perm[0],
        }
    }

    /// Number of elements.
    pub fn len(&self) -> u64 {
        self.next.len() as u64
    }

    /// Chains are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The address of the element the cursor currently points at.
    pub fn current_addr(&self) -> Addr {
        self.base.offset_by(self.cursor as u64 * 64)
    }

    /// Performs one dependent chase step through simulated memory.
    pub fn step(&mut self, ctx: &mut ThreadCtx) {
        ctx.load(self.current_addr());
        self.cursor = self.next[self.cursor as usize];
    }

    /// Advances the cursor without touching simulated memory (used by
    /// batched multi-chain stepping, where the load was already issued).
    pub fn advance_cursor(&mut self) {
        self.cursor = self.next[self.cursor as usize];
    }

    /// Releases the backing allocation.
    pub fn free(self, ctx: &mut ThreadCtx) {
        ctx.free(self.base).expect("chain allocation");
    }

    /// Verifies the chain is a single cycle covering every element
    /// (test/diagnostic helper).
    pub fn is_full_cycle(&self) -> bool {
        let n = self.next.len();
        let mut seen = vec![false; n];
        let mut cur = self.cursor as usize;
        for _ in 0..n {
            if seen[cur] {
                return false;
            }
            seen[cur] = true;
            cur = self.next[cur] as usize;
        }
        cur == self.cursor as usize && seen.iter().all(|&b| b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use quartz_memsim::{MemSimConfig, MemorySystem};
    use quartz_platform::{Architecture, NodeId, Platform, PlatformConfig};
    use quartz_threadsim::Engine;

    fn engine() -> Engine {
        let platform =
            Platform::new(PlatformConfig::new(Architecture::IvyBridge).with_perfect_counters());
        Engine::new(Arc::new(MemorySystem::new(
            platform,
            MemSimConfig::default().without_jitter(),
        )))
    }

    #[test]
    fn chain_is_a_full_cycle() {
        engine().run(|ctx| {
            for len in [2u64, 3, 17, 1024] {
                let chain = Chain::build(ctx, NodeId(0), len, 42);
                assert!(chain.is_full_cycle(), "len {len}");
            }
        });
    }

    #[test]
    fn chase_visits_every_element_once() {
        engine().run(|ctx| {
            let mut chain = Chain::build(ctx, NodeId(0), 256, 7);
            let mut seen = std::collections::HashSet::new();
            for _ in 0..256 {
                assert!(
                    seen.insert(chain.current_addr()),
                    "revisit before cycle end"
                );
                chain.step(ctx);
            }
            // Back at the start.
            assert!(seen.contains(&chain.current_addr()));
        });
    }

    #[test]
    fn different_seeds_differ() {
        engine().run(|ctx| {
            let a = Chain::build(ctx, NodeId(0), 64, 1);
            let b = Chain::build(ctx, NodeId(0), 64, 2);
            assert_ne!(a.next, b.next);
        });
    }

    #[test]
    fn rng_below_is_in_range() {
        let mut rng = Rng::new(9);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}
