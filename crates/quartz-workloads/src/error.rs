//! Typed workload-configuration errors.
//!
//! The PR-5 containment discipline: a bad configuration reaching a
//! workload builder must surface as a typed, nameable error a harness
//! can quarantine — not as a panic that unwinds through the simulation
//! engine. The panicking constructors remain as thin wrappers for
//! call sites that validated their inputs statically.

/// A workload was configured with parameters it cannot run with.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum WorkloadError {
    /// A collection that must be non-empty (key space, vertex set,
    /// request stream) was configured with zero items.
    EmptyDomain {
        /// What was empty, e.g. `"zipf key space"`.
        what: &'static str,
    },
    /// A worker/connection pool was configured with zero members.
    ZeroWorkers {
        /// Which pool, e.g. `"kv benchmark threads"`.
        what: &'static str,
    },
    /// A numeric parameter fell outside its documented range.
    OutOfRange {
        /// The parameter name.
        what: &'static str,
        /// The offending value.
        value: f64,
        /// Human-readable bound, e.g. `"[0, 1)"`.
        bounds: &'static str,
    },
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadError::EmptyDomain { what } => {
                write!(f, "{what} must not be empty")
            }
            WorkloadError::ZeroWorkers { what } => {
                write!(f, "{what} needs at least one member")
            }
            WorkloadError::OutOfRange {
                what,
                value,
                bounds,
            } => write!(f, "{what} = {value} outside {bounds}"),
        }
    }
}

impl std::error::Error for WorkloadError {}
