//! Graph generation and CSR layout in simulated memory.
//!
//! The paper's PageRank case study uses a 4.8M-vertex / 69M-edge web
//! graph (soc-LiveJournal shaped). Simulating that at per-access fidelity
//! is unnecessary for the sensitivity *shapes*, so the generator produces
//! a scaled-down power-law graph with the same average degree (~14) —
//! the scaling is recorded in EXPERIMENTS.md.

use quartz_memsim::Addr;
use quartz_platform::NodeId;
use quartz_threadsim::ThreadCtx;

use crate::chain::Rng;
use crate::error::WorkloadError;

/// A host-side directed graph in CSR form.
#[derive(Clone, Debug)]
pub struct Graph {
    /// Vertex count.
    pub n: usize,
    /// CSR row offsets (`n + 1` entries).
    pub row_ptr: Vec<u32>,
    /// CSR column indices (`m` entries).
    pub col_idx: Vec<u32>,
}

impl Graph {
    /// Generates a random power-law-ish directed graph with `n` vertices
    /// and ~`m` edges (RMAT-flavoured endpoint skew), deterministic in
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero. Use [`Graph::try_random`] to handle bad
    /// configurations as typed errors.
    pub fn random(n: usize, m: usize, seed: u64) -> Self {
        Self::try_random(n, m, seed).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible generator.
    ///
    /// # Errors
    ///
    /// [`WorkloadError::EmptyDomain`] when `n` is zero.
    pub fn try_random(n: usize, m: usize, seed: u64) -> Result<Self, WorkloadError> {
        if n == 0 {
            return Err(WorkloadError::EmptyDomain {
                what: "graph vertex set",
            });
        }
        let mut rng = Rng::new(seed);
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        let skewed = |rng: &mut Rng| -> usize {
            // Multiplying two uniforms skews mass toward low ids,
            // giving a heavy-tailed in/out-degree distribution.
            let a = rng.below(n as u64);
            let b = rng.below(n as u64);
            ((a as u128 * b as u128) / n as u128) as usize
        };
        for _ in 0..m {
            let src = skewed(&mut rng);
            let dst = rng.below(n as u64) as usize;
            if src != dst {
                adj[src].push(dst as u32);
            }
        }
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        row_ptr.push(0u32);
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
            col_idx.extend_from_slice(list);
            row_ptr.push(col_idx.len() as u32);
        }
        Ok(Graph {
            n,
            row_ptr,
            col_idx,
        })
    }

    /// Edge count.
    pub fn edges(&self) -> usize {
        self.col_idx.len()
    }

    /// Out-degree of `v`.
    pub fn degree(&self, v: usize) -> usize {
        (self.row_ptr[v + 1] - self.row_ptr[v]) as usize
    }

    /// Neighbours of `v`.
    pub fn neighbours(&self, v: usize) -> &[u32] {
        &self.col_idx[self.row_ptr[v] as usize..self.row_ptr[v + 1] as usize]
    }
}

/// The CSR arrays placed in simulated memory.
///
/// `row_ptr`/`col_idx` are 4-byte elements (16 per cache line); rank
/// vectors are 8-byte (8 per line). Sequential sweeps over the structure
/// arrays only touch memory once per line; random gathers touch a line
/// per access.
#[derive(Clone, Copy, Debug)]
pub struct SimGraph {
    /// Base of the row-pointer array.
    pub row_ptr: Addr,
    /// Base of the column-index array.
    pub col_idx: Addr,
    /// Base of the source rank vector.
    pub rank_src: Addr,
    /// Base of the destination rank vector.
    pub rank_dst: Addr,
    /// Vertices.
    pub n: u64,
    /// Edges.
    pub m: u64,
}

impl SimGraph {
    /// Allocates the CSR arrays: graph structure on `structure_node`,
    /// rank vectors on `rank_node` (the §3.3 data-placement knob).
    ///
    /// # Panics
    ///
    /// Panics if allocation fails.
    pub fn load(
        ctx: &mut ThreadCtx,
        graph: &Graph,
        structure_node: NodeId,
        rank_node: NodeId,
    ) -> Self {
        let n = graph.n as u64;
        let m = graph.edges() as u64;
        SimGraph {
            row_ptr: ctx.alloc_on(structure_node, (n + 1) * 4),
            col_idx: ctx.alloc_on(structure_node, m.max(1) * 4),
            rank_src: ctx.alloc_on(rank_node, n * 8),
            rank_dst: ctx.alloc_on(rank_node, n * 8),
            n,
            m,
        }
    }

    /// Address of `row_ptr[v]`.
    pub fn row_ptr_addr(&self, v: u64) -> Addr {
        self.row_ptr.offset_by(v * 4)
    }

    /// Address of `col_idx[e]`.
    pub fn col_idx_addr(&self, e: u64) -> Addr {
        self.col_idx.offset_by(e * 4)
    }

    /// Address of `rank_src[v]`.
    pub fn rank_src_addr(&self, v: u64) -> Addr {
        self.rank_src.offset_by(v * 8)
    }

    /// Address of `rank_dst[v]`.
    pub fn rank_dst_addr(&self, v: u64) -> Addr {
        self.rank_dst.offset_by(v * 8)
    }

    /// Swaps the rank vectors (between power iterations).
    pub fn swap_ranks(&mut self) {
        std::mem::swap(&mut self.rank_src, &mut self.rank_dst);
    }

    /// Frees all arrays.
    pub fn free(self, ctx: &mut ThreadCtx) {
        for a in [self.row_ptr, self.col_idx, self.rank_src, self.rank_dst] {
            ctx.free(a).expect("graph array");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_random_reports_empty_vertex_set() {
        assert!(matches!(
            Graph::try_random(0, 10, 1),
            Err(WorkloadError::EmptyDomain {
                what: "graph vertex set"
            })
        ));
    }

    #[test]
    fn generator_is_deterministic() {
        let a = Graph::random(100, 1000, 5);
        let b = Graph::random(100, 1000, 5);
        assert_eq!(a.row_ptr, b.row_ptr);
        assert_eq!(a.col_idx, b.col_idx);
    }

    #[test]
    fn csr_is_well_formed() {
        let g = Graph::random(500, 5000, 11);
        assert_eq!(g.row_ptr.len(), 501);
        assert_eq!(*g.row_ptr.last().unwrap() as usize, g.edges());
        for v in 0..g.n {
            assert!(g.row_ptr[v] <= g.row_ptr[v + 1]);
            for &u in g.neighbours(v) {
                assert!((u as usize) < g.n);
                assert_ne!(u as usize, v, "no self loops");
            }
        }
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let g = Graph::random(2000, 30_000, 3);
        let mut degrees: Vec<usize> = (0..g.n).map(|v| g.degree(v)).collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let top_sum: usize = degrees[..g.n / 20].iter().sum();
        let total: usize = degrees.iter().sum();
        assert!(
            top_sum as f64 / total as f64 > 0.15,
            "top 5% of vertices should hold a large share of edges"
        );
    }

    #[test]
    fn edges_roughly_match_request() {
        let g = Graph::random(1000, 10_000, 1);
        let m = g.edges();
        assert!(m > 8_000 && m <= 10_000, "edges after dedup: {m}");
    }
}
