//! The lock-striped B+-tree behind [`KvStore`].
//!
//! Nodes live in simulated memory: each node owns a 256-byte allocation
//! (4 cache lines — key area and payload area), and every traversal
//! touches the key lines of each node on the root-to-leaf path, exactly
//! the cache-miss profile that makes key-value stores latency-sensitive
//! (Fig. 16 (c)).
//!
//! # Host-lock discipline
//!
//! The simulated-thread engine runs exactly one thread at a time, so a
//! host-side lock held across a `ThreadCtx` operation (which may hand
//! control to another simulated thread) deadlocks the whole simulation.
//! Every operation therefore follows **plan-then-execute**: it takes the
//! host tree lock briefly to walk/mutate the host structure and record
//! the simulated addresses it touched, releases the lock, and only then
//! replays the address trace through `ThreadCtx`. Simulated-time mutual
//! exclusion between writers comes from striped *simulated* mutexes,
//! which are safe to block on.

use parking_lot::Mutex;
use quartz::Quartz;
use quartz_memsim::Addr;
use quartz_platform::NodeId;
use quartz_threadsim::{MutexId, ThreadCtx};

/// Maximum keys per node (order). 16 keys × 8 B = two cache lines.
const ORDER: usize = 16;

/// Bytes allocated per node (4 lines: keys + payload).
const NODE_BYTES: u64 = 256;

#[derive(Clone, Debug)]
enum NodeKind {
    Internal { children: Vec<usize> },
    Leaf { values: Vec<u64> },
}

#[derive(Clone, Debug)]
struct Node {
    keys: Vec<u64>,
    kind: NodeKind,
    addr: Addr,
}

#[derive(Debug)]
struct Tree {
    nodes: Vec<Node>,
    root: usize,
    len: u64,
    /// Pre-allocated node frames, refilled outside the host lock.
    spare_addrs: Vec<Addr>,
}

/// The memory ops a structural operation decided on, replayed through
/// the ctx after the host lock is released.
#[derive(Debug, Default)]
struct Trace {
    loads: Vec<Addr>,
    stores: Vec<Addr>,
    flushes: Vec<Addr>,
}

impl Trace {
    fn replay(self, ctx: &mut ThreadCtx, quartz: Option<&Quartz>) {
        for a in self.loads {
            ctx.load(a);
        }
        for a in self.stores {
            ctx.store(a);
        }
        if let Some(q) = quartz {
            for a in self.flushes {
                q.pflush(ctx, a);
            }
        }
    }
}

/// Key-value store configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KvConfig {
    /// Node hosting the tree nodes (use the Quartz NVM node for a
    /// persistent index).
    pub node: NodeId,
    /// Number of writer lock stripes.
    pub stripes: usize,
    /// Flush dirtied node lines with `pflush` after every update
    /// (requires passing a [`Quartz`] handle to [`KvStore::put`]).
    pub persist: bool,
}

impl KvConfig {
    /// A volatile store on `node` with 64 stripes.
    pub fn new(node: NodeId) -> Self {
        KvConfig {
            node,
            stripes: 64,
            persist: false,
        }
    }

    /// Enables `pflush`-based persistence of updates.
    pub fn with_persistence(mut self) -> Self {
        self.persist = true;
        self
    }
}

/// A concurrent ordered map from `u64` to `u64` over simulated memory.
pub struct KvStore {
    config: KvConfig,
    tree: Mutex<Tree>,
    stripes: Vec<MutexId>,
}

/// Spare node frames kept pre-allocated so splits never allocate inside
/// the host lock.
const SPARE_TARGET: usize = 8;

impl KvStore {
    /// Creates an empty store; allocates the root leaf and the lock
    /// stripes.
    ///
    /// # Panics
    ///
    /// Panics if `stripes` is zero or allocation fails.
    pub fn create(ctx: &mut ThreadCtx, config: KvConfig) -> Self {
        assert!(config.stripes > 0, "need at least one stripe");
        let root_addr = ctx.alloc_on(config.node, NODE_BYTES);
        let spare_addrs = (0..SPARE_TARGET)
            .map(|_| ctx.alloc_on(config.node, NODE_BYTES))
            .collect();
        let stripes = (0..config.stripes).map(|_| ctx.mutex_new()).collect();
        KvStore {
            config,
            tree: Mutex::new(Tree {
                nodes: vec![Node {
                    keys: Vec::new(),
                    kind: NodeKind::Leaf { values: Vec::new() },
                    addr: root_addr,
                }],
                root: 0,
                len: 0,
                spare_addrs,
            }),
            stripes,
        }
    }

    /// Number of live keys.
    pub fn len(&self) -> u64 {
        self.tree.lock().len
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn stripe_of(&self, key: u64) -> MutexId {
        let mut x = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 29;
        self.stripes[(x as usize) % self.stripes.len()]
    }

    /// Tops up the spare node-frame pool (outside the host lock).
    fn refill_spares(&self, ctx: &mut ThreadCtx) {
        loop {
            let need = {
                let tree = self.tree.lock();
                SPARE_TARGET.saturating_sub(tree.spare_addrs.len())
            };
            if need == 0 {
                return;
            }
            let addr = ctx.alloc_on(self.config.node, NODE_BYTES);
            self.tree.lock().spare_addrs.push(addr);
        }
    }

    /// Host-side root-to-leaf descent recording the traversal loads.
    fn descend(tree: &Tree, key: u64, trace: &mut Trace) -> Vec<usize> {
        let mut path = Vec::with_capacity(6);
        let mut cur = tree.root;
        loop {
            let node = &tree.nodes[cur];
            // Key lines of every node on the path.
            trace.loads.push(node.addr);
            trace.loads.push(node.addr.offset_by(64));
            path.push(cur);
            match &node.kind {
                NodeKind::Leaf { .. } => return path,
                NodeKind::Internal { children } => {
                    let slot = node.keys.partition_point(|&k| k <= key);
                    cur = children[slot];
                }
            }
        }
    }

    /// Looks a key up. Readers take no locks (MassTree-style lock-free
    /// reads).
    pub fn get(&self, ctx: &mut ThreadCtx, key: u64) -> Option<u64> {
        let mut trace = Trace::default();
        let result = {
            let tree = self.tree.lock();
            let path = Self::descend(&tree, key, &mut trace);
            let leaf = &tree.nodes[*path.last().expect("non-empty path")];
            trace.loads.push(leaf.addr.offset_by(128)); // payload line
            match &leaf.kind {
                NodeKind::Leaf { values } => leaf.keys.binary_search(&key).ok().map(|i| values[i]),
                NodeKind::Internal { .. } => unreachable!("descend ends at a leaf"),
            }
        };
        trace.replay(ctx, None);
        result
    }

    /// Inserts or updates a key, returning the previous value. Writers
    /// serialize per stripe; pass `quartz` to flush dirtied lines when
    /// persistence is enabled.
    ///
    /// # Panics
    ///
    /// Panics if `persist` is configured but `quartz` is `None`.
    pub fn put(
        &self,
        ctx: &mut ThreadCtx,
        quartz: Option<&Quartz>,
        key: u64,
        value: u64,
    ) -> Option<u64> {
        assert!(
            !self.config.persist || quartz.is_some(),
            "persistent store needs a Quartz handle for pflush"
        );
        self.refill_spares(ctx);
        let stripe = self.stripe_of(key);
        ctx.mutex_lock(stripe);
        let mut trace = Trace::default();
        let old = {
            let mut tree = self.tree.lock();
            let path = Self::descend(&tree, key, &mut trace);
            let leaf_id = *path.last().expect("non-empty path");
            let leaf_addr = tree.nodes[leaf_id].addr;
            let old = {
                let leaf = &mut tree.nodes[leaf_id];
                let NodeKind::Leaf { values } = &mut leaf.kind else {
                    unreachable!("descend ends at a leaf")
                };
                match leaf.keys.binary_search(&key) {
                    Ok(i) => {
                        let old = values[i];
                        values[i] = value;
                        Some(old)
                    }
                    Err(i) => {
                        leaf.keys.insert(i, key);
                        values.insert(i, value);
                        None
                    }
                }
            };
            // Key line and payload line dirtied.
            trace.stores.push(leaf_addr);
            trace.stores.push(leaf_addr.offset_by(128));
            if self.config.persist {
                trace.flushes.push(leaf_addr);
                trace.flushes.push(leaf_addr.offset_by(128));
            }
            if old.is_none() {
                tree.len += 1;
                if tree.nodes[leaf_id].keys.len() > ORDER {
                    Self::split(&mut tree, &path, self.config.persist, &mut trace);
                }
            }
            old
        };
        trace.replay(ctx, quartz);
        ctx.mutex_unlock(stripe);
        old
    }

    /// Removes a key, returning its value. (Leaf-local removal; no
    /// rebalancing — deletions are rare in the paper's put/get workloads,
    /// and MassTree itself defers structural shrinking.)
    pub fn remove(&self, ctx: &mut ThreadCtx, quartz: Option<&Quartz>, key: u64) -> Option<u64> {
        let stripe = self.stripe_of(key);
        ctx.mutex_lock(stripe);
        let mut trace = Trace::default();
        let old = {
            let mut tree = self.tree.lock();
            let path = Self::descend(&tree, key, &mut trace);
            let leaf_id = *path.last().expect("non-empty path");
            let leaf_addr = tree.nodes[leaf_id].addr;
            let leaf = &mut tree.nodes[leaf_id];
            let NodeKind::Leaf { values } = &mut leaf.kind else {
                unreachable!("descend ends at a leaf")
            };
            match leaf.keys.binary_search(&key) {
                Ok(i) => {
                    leaf.keys.remove(i);
                    let old = values.remove(i);
                    trace.stores.push(leaf_addr);
                    trace.stores.push(leaf_addr.offset_by(128));
                    if self.config.persist {
                        trace.flushes.push(leaf_addr);
                    }
                    tree.len -= 1;
                    Some(old)
                }
                Err(_) => None,
            }
        };
        trace.replay(ctx, quartz);
        ctx.mutex_unlock(stripe);
        old
    }

    /// Ordered scan: up to `limit` pairs with key >= `from`.
    pub fn scan(&self, ctx: &mut ThreadCtx, from: u64, limit: usize) -> Vec<(u64, u64)> {
        let mut trace = Trace::default();
        let out = {
            let tree = self.tree.lock();
            let mut out = Vec::with_capacity(limit);
            let mut stack = vec![tree.root];
            let mut leaves = Vec::new();
            while let Some(id) = stack.pop() {
                match &tree.nodes[id].kind {
                    NodeKind::Leaf { .. } => leaves.push(id),
                    NodeKind::Internal { children } => {
                        stack.extend(children.iter().rev());
                    }
                }
            }
            leaves.sort_by_key(|&id| tree.nodes[id].keys.first().copied().unwrap_or(u64::MAX));
            'outer: for id in leaves {
                let node = &tree.nodes[id];
                if node.keys.last().is_some_and(|&k| k < from) {
                    continue;
                }
                trace.loads.push(node.addr);
                trace.loads.push(node.addr.offset_by(64));
                trace.loads.push(node.addr.offset_by(128));
                let NodeKind::Leaf { values } = &node.kind else {
                    unreachable!()
                };
                for (i, &k) in node.keys.iter().enumerate() {
                    if k >= from {
                        out.push((k, values[i]));
                        if out.len() >= limit {
                            break 'outer;
                        }
                    }
                }
            }
            out
        };
        trace.replay(ctx, None);
        out
    }

    /// Splits the over-full node at the end of `path`, propagating
    /// upward. Uses pre-allocated spare frames; records writes in the
    /// trace. Called with the host tree lock held (no ctx operations).
    fn split(tree: &mut Tree, path: &[usize], persist: bool, trace: &mut Trace) {
        let mut child_level = path.len() - 1;
        loop {
            let node_id = path[child_level];
            if tree.nodes[node_id].keys.len() <= ORDER {
                break;
            }
            let new_addr = tree
                .spare_addrs
                .pop()
                .expect("spare pool refilled before every put");
            let (sep, new_node) = {
                let node = &mut tree.nodes[node_id];
                let mid = node.keys.len() / 2;
                match &mut node.kind {
                    NodeKind::Leaf { values } => {
                        let right_keys = node.keys.split_off(mid);
                        let right_vals = values.split_off(mid);
                        let sep = right_keys[0];
                        (
                            sep,
                            Node {
                                keys: right_keys,
                                kind: NodeKind::Leaf { values: right_vals },
                                addr: new_addr,
                            },
                        )
                    }
                    NodeKind::Internal { children } => {
                        let mut right_keys = node.keys.split_off(mid);
                        let sep = right_keys.remove(0);
                        let right_children = children.split_off(mid + 1);
                        (
                            sep,
                            Node {
                                keys: right_keys,
                                kind: NodeKind::Internal {
                                    children: right_children,
                                },
                                addr: new_addr,
                            },
                        )
                    }
                }
            };
            let new_id = tree.nodes.len();
            let left_addr = tree.nodes[node_id].addr;
            for line in 0..4 {
                trace.stores.push(left_addr.offset_by(line * 64));
                trace.stores.push(new_addr.offset_by(line * 64));
            }
            if persist {
                trace.flushes.push(left_addr);
                trace.flushes.push(new_addr);
            }
            tree.nodes.push(new_node);

            if child_level == 0 {
                // Split of the root: grow the tree.
                let root_addr = tree
                    .spare_addrs
                    .pop()
                    .expect("spare pool refilled before every put");
                let new_root = Node {
                    keys: vec![sep],
                    kind: NodeKind::Internal {
                        children: vec![node_id, new_id],
                    },
                    addr: root_addr,
                };
                trace.stores.push(root_addr);
                tree.root = tree.nodes.len();
                tree.nodes.push(new_root);
                break;
            }
            // Insert separator into the parent.
            let parent_id = path[child_level - 1];
            let parent = &mut tree.nodes[parent_id];
            let slot = parent.keys.partition_point(|&k| k <= sep);
            parent.keys.insert(slot, sep);
            let NodeKind::Internal { children } = &mut parent.kind else {
                unreachable!("parents are internal")
            };
            children.insert(slot + 1, new_id);
            let parent_addr = parent.addr;
            trace.stores.push(parent_addr);
            child_level -= 1;
        }
    }

    /// Depth of the tree (diagnostics).
    pub fn depth(&self) -> usize {
        let tree = self.tree.lock();
        let mut d = 1;
        let mut cur = tree.root;
        loop {
            match &tree.nodes[cur].kind {
                NodeKind::Leaf { .. } => return d,
                NodeKind::Internal { children } => {
                    cur = children[0];
                    d += 1;
                }
            }
        }
    }
}

impl std::fmt::Debug for KvStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvStore")
            .field("len", &self.len())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use quartz_memsim::{MemSimConfig, MemorySystem};
    use quartz_platform::{Architecture, Platform, PlatformConfig};
    use quartz_threadsim::Engine;

    fn engine() -> Engine {
        let platform =
            Platform::new(PlatformConfig::new(Architecture::IvyBridge).with_perfect_counters());
        Engine::new(Arc::new(MemorySystem::new(
            platform,
            MemSimConfig::default().without_jitter(),
        )))
    }

    #[test]
    fn put_get_roundtrip() {
        engine().run(|ctx| {
            let store = KvStore::create(ctx, KvConfig::new(NodeId(0)));
            assert!(store.is_empty());
            assert_eq!(store.put(ctx, None, 5, 50), None);
            assert_eq!(store.put(ctx, None, 5, 55), Some(50));
            assert_eq!(store.get(ctx, 5), Some(55));
            assert_eq!(store.get(ctx, 6), None);
            assert_eq!(store.len(), 1);
        });
    }

    #[test]
    fn many_inserts_split_and_stay_sorted() {
        engine().run(|ctx| {
            let store = KvStore::create(ctx, KvConfig::new(NodeId(0)));
            // Insert in a scrambled order.
            let n = 2_000u64;
            let mut k = 1u64;
            for _ in 0..n {
                k = (k * 48271) % 2_147_483_647;
                store.put(ctx, None, k, k + 1);
            }
            assert!(store.depth() >= 3, "tree grew: depth {}", store.depth());
            // All retrievable.
            let mut k = 1u64;
            for _ in 0..n {
                k = (k * 48271) % 2_147_483_647;
                assert_eq!(store.get(ctx, k), Some(k + 1));
            }
            // Scan returns sorted keys.
            let scan = store.scan(ctx, 0, 100);
            assert_eq!(scan.len(), 100);
            assert!(scan.windows(2).all(|w| w[0].0 < w[1].0));
        });
    }

    #[test]
    fn remove_works() {
        engine().run(|ctx| {
            let store = KvStore::create(ctx, KvConfig::new(NodeId(0)));
            for k in 0..100 {
                store.put(ctx, None, k, k);
            }
            assert_eq!(store.remove(ctx, None, 40), Some(40));
            assert_eq!(store.remove(ctx, None, 40), None);
            assert_eq!(store.get(ctx, 40), None);
            assert_eq!(store.len(), 99);
        });
    }

    #[test]
    fn scan_from_midpoint() {
        engine().run(|ctx| {
            let store = KvStore::create(ctx, KvConfig::new(NodeId(0)));
            for k in (0..200).map(|x| x * 2) {
                store.put(ctx, None, k, k);
            }
            let scan = store.scan(ctx, 101, 5);
            assert_eq!(
                scan.iter().map(|p| p.0).collect::<Vec<_>>(),
                vec![102, 104, 106, 108, 110]
            );
        });
    }

    #[test]
    fn concurrent_writers_are_consistent() {
        let out = Arc::new(parking_lot::Mutex::new(0u64));
        let o = Arc::clone(&out);
        engine().run(move |ctx| {
            let store = Arc::new(KvStore::create(ctx, KvConfig::new(NodeId(0))));
            let mut kids = Vec::new();
            for t in 0..4u64 {
                let store = Arc::clone(&store);
                kids.push(ctx.spawn(move |c| {
                    for i in 0..500u64 {
                        store.put(c, None, t * 10_000 + i, i);
                    }
                }));
            }
            for k in kids {
                ctx.join(k);
            }
            *o.lock() = store.len();
            // Spot-check cross-thread visibility.
            assert_eq!(store.get(ctx, 30_499), Some(499));
        });
        assert_eq!(*out.lock(), 2_000);
    }

    #[test]
    fn caveat_lock_inversion_around_puts_is_contained_as_named_deadlock() {
        // Regression guard for the module-header caveat ("Host-lock
        // discipline"): writer mutual exclusion must come from striped
        // *simulated* mutexes taken one at a time. This models the
        // forbidden shape — two writers wrapping their puts in two sim
        // locks acquired in opposite order — and pins down that the
        // engine contains it as a typed `SimFailure::Deadlock` naming
        // the actual lock cycle (rather than hanging the harness or
        // poisoning shared state with an opaque panic).
        use quartz_threadsim::SimFailure;
        let failure = engine()
            .try_run(|ctx| {
                let store = Arc::new(KvStore::create(ctx, KvConfig::new(NodeId(0))));
                let a = ctx.mutex_new();
                let b = ctx.mutex_new();
                let s1 = Arc::clone(&store);
                let k1 = ctx.spawn(move |c| {
                    c.mutex_lock(a);
                    s1.put(c, None, 1, 10);
                    c.compute_ns(50_000.0); // hold `a` past k2's first lock
                    c.mutex_lock(b); // waits for k2 forever
                    c.mutex_unlock(b);
                    c.mutex_unlock(a);
                });
                let s2 = Arc::clone(&store);
                let k2 = ctx.spawn(move |c| {
                    c.mutex_lock(b);
                    s2.put(c, None, 2, 20);
                    c.compute_ns(50_000.0);
                    c.mutex_lock(a); // waits for k1 forever
                    c.mutex_unlock(a);
                    c.mutex_unlock(b);
                });
                ctx.join(k1);
                ctx.join(k2);
            })
            .unwrap_err();
        let SimFailure::Deadlock(report) = failure else {
            panic!("expected Deadlock, got {failure}");
        };
        // The two writers form a two-edge mutex cycle; the joining root
        // is reported among the non-finished threads but is not part of
        // the cycle.
        assert_eq!(report.cycle.len(), 2, "named cycle: {report}");
        let mut cycle_threads: Vec<usize> = report.cycle.iter().map(|e| e.thread.0).collect();
        cycle_threads.sort_unstable();
        assert_eq!(cycle_threads, vec![1, 2]);
        assert!(report.cycle.iter().all(|e| e.mutex().is_some()));
        let msg = report.to_string();
        assert!(msg.contains("cycle:"), "{msg}");
        assert!(msg.contains("-(m"), "{msg}");
        assert!(
            report.threads.iter().any(|t| t.thread.0 == 0),
            "joining root listed: {report}"
        );
    }

    #[test]
    fn traversal_costs_grow_with_depth() {
        engine().run(|ctx| {
            let store = KvStore::create(ctx, KvConfig::new(NodeId(0)));
            for k in 0..5_000u64 {
                store.put(ctx, None, k, k);
            }
            ctx.mem().invalidate_caches();
            let t0 = ctx.now();
            store.get(ctx, 4_321);
            let cold = ctx.now().saturating_duration_since(t0).as_ns_f64();
            // A cold lookup of a depth-d tree costs ≥ d DRAM misses.
            let d = store.depth() as f64;
            assert!(
                cold > (d - 1.0) * 87.0,
                "cold lookup {cold} ns at depth {d}"
            );
        });
    }
}
