//! The key-value benchmark driver (Fig. 15/16 workload).
//!
//! Preloads the store, then runs `threads` workers issuing a zipfian
//! put/get mix, reporting the `put/s` and `get/s` throughputs the paper's
//! Fig. 15 validates.

use std::sync::Arc;

use quartz::Quartz;
use quartz_platform::time::Duration;
use quartz_threadsim::ThreadCtx;

use crate::error::WorkloadError;
use crate::kvstore::btree::KvStore;
use crate::zipf::Zipf;

/// Benchmark parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KvBenchConfig {
    /// Keys preloaded before the timed phase.
    pub preload_keys: u64,
    /// Operations per worker thread.
    pub ops_per_thread: u64,
    /// Worker threads (the paper sweeps 1, 2, 4, 8).
    pub threads: usize,
    /// Fraction of operations that are gets (rest are puts).
    pub get_fraction: f64,
    /// Zipfian skew of the key distribution.
    pub zipf_theta: f64,
    /// Host CPU work per get, in ns (key hashing, node search, version
    /// validation — MassTree spends on the order of a microsecond of CPU
    /// per operation on its 140M-key trees).
    pub get_compute_ns: f64,
    /// Host CPU work per put, in ns.
    pub put_compute_ns: f64,
    /// Seed for key sampling.
    pub seed: u64,
}

impl Default for KvBenchConfig {
    fn default() -> Self {
        KvBenchConfig {
            preload_keys: 20_000,
            ops_per_thread: 10_000,
            threads: 1,
            get_fraction: 0.5,
            zipf_theta: 0.9,
            get_compute_ns: 800.0,
            put_compute_ns: 1_000.0,
            seed: 0x4B56,
        }
    }
}

/// Benchmark output.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KvBenchResult {
    /// Wall time of the timed phase.
    pub elapsed: Duration,
    /// Get operations completed.
    pub gets: u64,
    /// Put operations completed.
    pub puts: u64,
    /// Thread-time spent inside get operations (sums across threads).
    pub get_time: Duration,
    /// Thread-time spent inside put operations (sums across threads).
    pub put_time: Duration,
}

impl KvBenchResult {
    /// Get service rate: completed gets per second of time the threads
    /// spent serving gets (the per-operation-class rate of Fig. 15).
    pub fn gets_per_sec(&self) -> f64 {
        if self.get_time.is_zero() {
            return 0.0;
        }
        self.gets as f64 / (self.get_time.as_ns_f64() * 1e-9)
    }

    /// Put service rate: completed puts per second of put-serving time.
    pub fn puts_per_sec(&self) -> f64 {
        if self.put_time.is_zero() {
            return 0.0;
        }
        self.puts as f64 / (self.put_time.as_ns_f64() * 1e-9)
    }

    /// Combined wall-clock throughput of the mixed phase.
    pub fn ops_per_sec(&self) -> f64 {
        (self.gets + self.puts) as f64 / (self.elapsed.as_ns_f64() * 1e-9)
    }
}

/// Preloads `store` with `keys` sequential keys (scrambled insert order).
pub fn preload(ctx: &mut ThreadCtx, store: &KvStore, quartz: Option<&Quartz>, keys: u64) {
    let mut k = 1u64;
    for _ in 0..keys {
        k = (k
            .wrapping_mul(2_862_933_555_777_941_757)
            .wrapping_add(3_037_000_493))
            % keys.max(2);
        store.put(ctx, quartz, k, k ^ 0xABCD);
    }
    // Ensure the keyspace is fully populated despite LCG collisions.
    for k in 0..keys {
        store.put(ctx, quartz, k, k ^ 0xABCD);
    }
}

/// Validates a [`KvBenchConfig`] against the driver's documented domain.
///
/// # Errors
///
/// Typed errors for zero workers, an empty key space, or a get
/// fraction / zipf skew outside range.
pub fn validate_config(config: &KvBenchConfig) -> Result<(), WorkloadError> {
    if config.threads == 0 {
        return Err(WorkloadError::ZeroWorkers {
            what: "kv benchmark threads",
        });
    }
    if config.preload_keys == 0 {
        return Err(WorkloadError::EmptyDomain {
            what: "kv benchmark key space",
        });
    }
    if !config.get_fraction.is_finite() || !(0.0..=1.0).contains(&config.get_fraction) {
        return Err(WorkloadError::OutOfRange {
            what: "kv get fraction",
            value: config.get_fraction,
            bounds: "[0, 1]",
        });
    }
    // Delegates the theta check so both paths report identically.
    Zipf::try_new(config.preload_keys, config.zipf_theta, config.seed)?;
    Ok(())
}

/// Runs the timed put/get phase from the calling (coordinator) thread.
///
/// # Panics
///
/// Panics on an invalid configuration (see [`validate_config`]). Use
/// [`try_run_kv_benchmark`] to handle that as a typed error.
pub fn run_kv_benchmark(
    ctx: &mut ThreadCtx,
    store: &Arc<KvStore>,
    quartz: Option<Arc<Quartz>>,
    config: &KvBenchConfig,
) -> KvBenchResult {
    try_run_kv_benchmark(ctx, store, quartz, config).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible variant of [`run_kv_benchmark`]: validates the
/// configuration before spawning any simulated thread.
///
/// # Errors
///
/// See [`validate_config`].
pub fn try_run_kv_benchmark(
    ctx: &mut ThreadCtx,
    store: &Arc<KvStore>,
    quartz: Option<Arc<Quartz>>,
    config: &KvBenchConfig,
) -> Result<KvBenchResult, WorkloadError> {
    validate_config(config)?;
    let t0 = ctx.now();
    let tallies: Arc<parking_lot::Mutex<(u64, u64, Duration, Duration)>> = Arc::new(
        parking_lot::Mutex::new((0, 0, Duration::ZERO, Duration::ZERO)),
    );
    let mut kids = Vec::with_capacity(config.threads);
    for t in 0..config.threads {
        let store = Arc::clone(store);
        let quartz = quartz.clone();
        let cfg = *config;
        let tallies = Arc::clone(&tallies);
        kids.push(ctx.spawn(move |c| {
            let mut zipf = Zipf::new(
                cfg.preload_keys.max(1),
                cfg.zipf_theta,
                cfg.seed.wrapping_add(t as u64 * 1_000_003),
            );
            let mut coin = cfg.seed.wrapping_mul(t as u64 | 1);
            let (mut gets, mut puts) = (0u64, 0u64);
            let (mut get_time, mut put_time) = (Duration::ZERO, Duration::ZERO);
            for i in 0..cfg.ops_per_thread {
                let key = zipf.sample();
                coin = coin
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                let is_get = ((coin >> 33) as f64 / (1u64 << 31) as f64) < cfg.get_fraction;
                let op_start = c.now();
                if is_get {
                    c.compute_ns(cfg.get_compute_ns);
                    store.get(c, key);
                    gets += 1;
                    get_time += c.now().saturating_duration_since(op_start);
                } else {
                    c.compute_ns(cfg.put_compute_ns);
                    store.put(c, quartz.as_deref(), key, i);
                    puts += 1;
                    put_time += c.now().saturating_duration_since(op_start);
                }
            }
            let mut tl = tallies.lock();
            tl.0 += gets;
            tl.1 += puts;
            tl.2 += get_time;
            tl.3 += put_time;
        }));
    }
    for k in kids {
        ctx.join(k);
    }
    let elapsed = ctx.now().saturating_duration_since(t0);
    let (gets, puts, get_time, put_time) = *tallies.lock();
    Ok(KvBenchResult {
        elapsed,
        gets,
        puts,
        get_time,
        put_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    use quartz_memsim::{MemSimConfig, MemorySystem};
    use quartz_platform::{Architecture, NodeId, Platform, PlatformConfig};
    use quartz_threadsim::Engine;

    use crate::kvstore::btree::KvConfig;

    fn run(threads: usize, ops: u64) -> KvBenchResult {
        let platform =
            Platform::new(PlatformConfig::new(Architecture::SandyBridge).with_perfect_counters());
        let mem = Arc::new(MemorySystem::new(
            platform,
            MemSimConfig::default().without_jitter(),
        ));
        let out = Arc::new(parking_lot::Mutex::new(None));
        let o = Arc::clone(&out);
        Engine::new(mem).run(move |ctx| {
            let store = Arc::new(KvStore::create(ctx, KvConfig::new(NodeId(0))));
            preload(ctx, &store, None, 5_000);
            let cfg = KvBenchConfig {
                preload_keys: 5_000,
                ops_per_thread: ops,
                threads,
                ..KvBenchConfig::default()
            };
            *o.lock() = Some(run_kv_benchmark(ctx, &store, None, &cfg));
        });
        let r = out.lock().take().unwrap();
        r
    }

    #[test]
    fn invalid_configs_are_typed_errors() {
        use crate::error::WorkloadError;
        let bad_threads = KvBenchConfig {
            threads: 0,
            ..KvBenchConfig::default()
        };
        assert!(matches!(
            validate_config(&bad_threads),
            Err(WorkloadError::ZeroWorkers { .. })
        ));
        let bad_keys = KvBenchConfig {
            preload_keys: 0,
            ..KvBenchConfig::default()
        };
        assert!(matches!(
            validate_config(&bad_keys),
            Err(WorkloadError::EmptyDomain { .. })
        ));
        let bad_mix = KvBenchConfig {
            get_fraction: 1.5,
            ..KvBenchConfig::default()
        };
        assert!(matches!(
            validate_config(&bad_mix),
            Err(WorkloadError::OutOfRange { .. })
        ));
        let bad_theta = KvBenchConfig {
            zipf_theta: 2.0,
            ..KvBenchConfig::default()
        };
        assert!(matches!(
            validate_config(&bad_theta),
            Err(WorkloadError::OutOfRange { .. })
        ));
        assert!(validate_config(&KvBenchConfig::default()).is_ok());
    }

    #[test]
    fn throughput_is_positive_and_accounted() {
        let r = run(1, 2_000);
        assert_eq!(r.gets + r.puts, 2_000);
        assert!(r.ops_per_sec() > 0.0);
        assert!(r.gets_per_sec() > 0.0);
        assert!(r.puts_per_sec() > 0.0);
    }

    #[test]
    fn more_threads_scale_throughput() {
        let one = run(1, 2_000);
        let four = run(4, 2_000);
        let speedup = four.ops_per_sec() / one.ops_per_sec();
        assert!(
            speedup > 1.8,
            "4 threads should outpace 1 (lock-striped): {speedup}"
        );
    }
}
