//! A concurrent ordered key-value store standing in for MassTree
//! (paper §4.7, Fig. 15/16).
//!
//! MassTree is a cache-craftiness-oriented concatenation of B+-trees with
//! fine-grained locking and lock-free readers. This stand-in keeps the
//! properties the sensitivity study depends on — pointer-heavy
//! root-to-leaf traversals of a few cache lines per node, lock-striped
//! writers, lock-free readers, optional persistence via `pflush` — while
//! staying small enough to audit. Keys and values are `u64`.

pub mod btree;
pub mod driver;
pub mod service;
pub mod undo_log;

pub use btree::{KvConfig, KvStore};
pub use driver::{preload, run_kv_benchmark, KvBenchConfig, KvBenchResult};
pub use service::{
    backoff_delay, deadline_remaining, validate_service_config, KvService, NoServiceFaults,
    ServiceConfig, ServiceFaultInjector, ServiceResult,
};
pub use undo_log::{
    check_undo_log, golden_prefix, run_undo_log, UndoLogKv, UndoLogSpec, UndoVariant,
};
