//! Open-loop PM-backed KV *service* — the "heavy traffic" scenario.
//!
//! The paper's closed-loop kernels (Fig. 15/16) measure service rates,
//! but NVM latency reshapes *application* performance most visibly
//! under open-loop load, where queueing amplifies slow requests into
//! tail latency. This module marries the deterministic scheduler with a
//! discrete-event request layer, in the style of Shadow's
//! real-app-on-simulated-network architecture:
//!
//! * **N connections**, each an [`open-loop event
//!   source`](quartz_threadsim::Engine::add_open_loop_source) with
//!   seeded-exponential inter-arrival gaps and its own zipfian key
//!   stream (deterministic per `(seed, connection)`), fan in to
//! * **M server workers**, each draining its own [`SimChannel`]
//!   fan-in queue (connection *c* feeds worker *c mod M*) in
//!   configurable batches over the lock-striped [`KvStore`].
//!
//! Every request is timestamped **at arrival** — the source's firing
//! instant, independent of any queue state — so the recorded latencies
//! are coordinated-omission-free: a request that sat behind a slow NVM
//! write is charged its full sojourn time.
//!
//! # Overload robustness
//!
//! Past the knee of the throughput curve an unprotected open-loop
//! service is unstable by construction: queues grow without bound and
//! p999 diverges. [`ServiceConfig`] therefore carries an optional
//! protection layer, off by default so the unprotected baseline stays
//! measurable:
//!
//! * **Deadline propagation** — every request is stamped
//!   `arrival + deadline` at admission; with
//!   [`drop_expired`](ServiceConfig::drop_expired) a worker drops
//!   expired requests *before* executing them (and a response finished
//!   past its deadline counts as expired, not served), so the latency
//!   histogram of served requests stays bounded.
//! * **Admission control / load shedding** — a bounded per-worker
//!   [`inflight_window`](ServiceConfig::inflight_window) at the
//!   connection fan-in: arrivals bound for a worker whose window is
//!   full are shed at the source (counted separately from
//!   served/failed), absorbing the excess offered load instead of
//!   queueing it. The window is per fan-in queue, so one wedged
//!   worker sheds only its own share and cannot starve admission for
//!   the healthy workers.
//! * **Seeded retry with backoff** — a response dropped by the fault
//!   seam is retried up to [`max_retries`](ServiceConfig::max_retries)
//!   times after an exponential backoff with deterministic jitter: a
//!   pure splitmix64 hash of `(seed, request, attempt)` (see
//!   [`backoff_delay`]), the same discipline as
//!   `quartz-faults::PlanInjector`, so results are byte-identical at
//!   any `--jobs`.
//! * **Per-worker circuit breaker** — trips open after
//!   [`breaker_threshold`](ServiceConfig::breaker_threshold)
//!   consecutive deadline misses, sheds incoming work for a
//!   virtual-time cooldown, then half-opens on a single probe request.
//!
//! The accounting is conservative by construction: every offered
//! request lands in exactly one of served / shed / expired / failed
//! (`offered == served + shed + expired + failed`, see
//! [`ServiceResult::conservation_holds`]).
//!
//! Service-seam faults (a slow worker, a stuck worker, dropped
//! responses) are delivered through the [`ServiceFaultInjector`] seam —
//! `quartz-faults` provides the seeded plan-driven implementation.
//!
//! Host-lock discipline: per-worker tallies live in thread-local
//! `Tally`s and merge once into a single `parking_lot` leaf mutex at
//! worker exit; the admission gauge and gate are lock-free atomics
//! touched only at source firings (serialized under the scheduler
//! lock), so nothing host-side is contended on the request path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use quartz::{LatencyHist, Quartz};
use quartz_platform::time::{Duration, SimTime};
use quartz_platform::NodeId;
use quartz_threadsim::{Engine, RecvTimeoutError, SimChannel, ThreadCtx};

use crate::chain::Rng;
use crate::error::WorkloadError;
use crate::kvstore::btree::{KvConfig, KvStore};
use crate::kvstore::driver::preload;
use crate::zipf::Zipf;

/// One in-flight request.
#[derive(Clone, Copy, Debug)]
struct Request {
    /// Injection instant (the open-loop arrival, *not* the dequeue).
    arrival: SimTime,
    /// Admission-stamped completion deadline, when the service runs
    /// with a deadline budget.
    deadline: Option<SimTime>,
    /// Globally unique request id (connection-major); the retry
    /// backoff hash key.
    id: u64,
    /// Retry attempt number; 0 for the first execution.
    attempt: u32,
    key: u64,
    is_get: bool,
    value: u64,
}

/// splitmix64 — the repo-wide seeded hash (same discipline as
/// `quartz-faults`' plan injector and the crash planner).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The deterministic retry backoff: attempt `attempt` of request
/// `request` waits `base·2^attempt` plus a seeded jitter of up to
/// `jitter` times that, i.e. the result always lies in
/// `[base·2^attempt, base·2^attempt·(1 + jitter))`.
///
/// A pure function of `(seed, request, attempt)` — no RNG state, no
/// wall clock — so the retry schedule is byte-identical across repeats
/// and `--jobs` counts, exactly like `quartz-faults::PlanInjector`
/// decisions.
pub fn backoff_delay(
    seed: u64,
    request: u64,
    attempt: u32,
    base: Duration,
    jitter: f64,
) -> Duration {
    let exp = base.as_ns_f64() * (1u64 << attempt.min(20)) as f64;
    let h = splitmix64(seed ^ splitmix64(request) ^ splitmix64(u64::from(attempt).wrapping_add(1)));
    // Top 53 bits -> uniform in [0, 1).
    let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    Duration::from_ns_f64(exp * (1.0 + jitter.max(0.0) * u))
}

/// Virtual-time budget left before `deadline` at instant `now`.
/// Saturates to zero at and past expiry — deadline arithmetic never
/// underflows, even exactly at the boundary.
pub fn deadline_remaining(deadline: SimTime, now: SimTime) -> Duration {
    deadline.saturating_duration_since(now)
}

/// The service-seam fault contract: where a real service misbehaves —
/// a worker slows down, wedges, or loses a response — without the
/// service knowing *why*. `quartz-faults` provides the seeded
/// plan-driven implementation; the defaults are benign, so
/// [`NoServiceFaults`] is indistinguishable from no seam at all.
///
/// All methods are pure functions of `(worker, seq)` — `seq` is the
/// worker's own processed-request counter, deterministic under the
/// engine's permit-handoff serialization — so a faulted run is
/// byte-identical across repeats and `--jobs` counts.
pub trait ServiceFaultInjector: Send + Sync {
    /// Extra virtual-time compute charged before executing worker
    /// `worker`'s `seq`-th request (a persistently slow worker).
    fn worker_delay(&self, worker: usize, seq: u64) -> Duration {
        let _ = (worker, seq);
        Duration::ZERO
    }

    /// One-shot stall before worker `worker`'s `seq`-th request: the
    /// worker stops draining for this long (a wedged worker whose
    /// queue backs up), then resumes.
    fn worker_stall(&self, worker: usize, seq: u64) -> Duration {
        let _ = (worker, seq);
        Duration::ZERO
    }

    /// Whether the response to worker `worker`'s `seq`-th request is
    /// lost after execution (the work was done, the reply never made
    /// it — the canonical retry trigger).
    fn drop_response(&self, worker: usize, seq: u64) -> bool {
        let _ = (worker, seq);
        false
    }
}

/// The benign injector: no delays, no stalls, no drops.
pub struct NoServiceFaults;

impl ServiceFaultInjector for NoServiceFaults {}

/// Service scenario parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServiceConfig {
    /// Open-loop client connections (N). The offered load splits evenly
    /// across them.
    pub connections: usize,
    /// Server worker threads (M). Connection `c` feeds worker `c % M`.
    pub workers: usize,
    /// Total requests injected across all connections.
    pub requests: u64,
    /// Total offered load in requests/second of virtual time.
    pub offered_rps: f64,
    /// Maximum requests a worker drains per wake-up; the per-wake-up
    /// dispatch cost amortizes over the batch.
    pub batch: usize,
    /// Per-wake-up dispatch cost in ns (scheduling, epoll-style readying).
    pub dispatch_ns: f64,
    /// Keys preloaded before the gate opens.
    pub preload_keys: u64,
    /// Fraction of requests that are gets.
    pub get_fraction: f64,
    /// Zipfian skew of the key distribution.
    pub zipf_theta: f64,
    /// Host CPU work per get, in ns.
    pub get_compute_ns: f64,
    /// Host CPU work per put, in ns.
    pub put_compute_ns: f64,
    /// Master seed; each connection derives its own streams.
    pub seed: u64,
    /// Per-request completion budget, stamped at admission. `Some`
    /// enables deadline *measurement* (goodput = served within the
    /// budget) in every mode; enforcement additionally needs
    /// [`drop_expired`](Self::drop_expired).
    pub deadline: Option<Duration>,
    /// Enforce the deadline: drop expired requests before executing
    /// them, and count a response finished past its deadline as
    /// expired rather than served.
    pub drop_expired: bool,
    /// Per-worker admission window: maximum requests admitted to one
    /// worker's fan-in queue but not yet resolved. Arrivals bound for
    /// a full window are shed at the source. `None` admits everything
    /// (the unprotected baseline).
    pub inflight_window: Option<usize>,
    /// Retries for a dropped response before the request counts as
    /// failed. 0 fails immediately.
    pub max_retries: u32,
    /// First-attempt retry backoff; attempt `a` waits `base·2^a` plus
    /// seeded jitter (see [`backoff_delay`]).
    pub backoff_base: Duration,
    /// Jitter fraction on the backoff, in `[0, 1]`.
    pub backoff_jitter: f64,
    /// Consecutive deadline misses that trip a worker's circuit
    /// breaker. 0 disables the breaker.
    pub breaker_threshold: u32,
    /// How long a tripped breaker sheds before half-opening on a probe.
    pub breaker_cooldown: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            connections: 8,
            workers: 4,
            requests: 100_000,
            offered_rps: 1.0e6,
            batch: 8,
            dispatch_ns: 150.0,
            preload_keys: 20_000,
            get_fraction: 0.9,
            zipf_theta: 0.9,
            get_compute_ns: 300.0,
            put_compute_ns: 400.0,
            seed: 0x5EB5,
            deadline: None,
            drop_expired: false,
            inflight_window: None,
            max_retries: 0,
            backoff_base: Duration::from_us(50),
            backoff_jitter: 0.5,
            breaker_threshold: 0,
            breaker_cooldown: Duration::from_us(200),
        }
    }
}

impl ServiceConfig {
    /// The canonical protected profile: deadline enforcement, a
    /// batch-scaled admission window, three retries, and an armed
    /// breaker. Keeps an already-set deadline budget.
    pub fn protected(mut self) -> Self {
        self.deadline = Some(self.deadline.unwrap_or(Duration::from_ms(1)));
        self.drop_expired = true;
        self.inflight_window = Some(self.batch * 16);
        self.max_retries = 3;
        self.breaker_threshold = 32;
        self
    }
}

/// Validates a [`ServiceConfig`].
///
/// # Errors
///
/// Typed errors for zero connections/workers/requests/batch, an empty
/// key space, a rate/fraction/skew outside range, or an inconsistent
/// protection layer (enforcement without a deadline, zero-width
/// admission window, out-of-range jitter, breaker without a cooldown).
pub fn validate_service_config(config: &ServiceConfig) -> Result<(), WorkloadError> {
    if config.connections == 0 {
        return Err(WorkloadError::ZeroWorkers {
            what: "service connections",
        });
    }
    if config.workers == 0 {
        return Err(WorkloadError::ZeroWorkers {
            what: "service workers",
        });
    }
    if config.workers > config.connections {
        // A worker whose fan-in queue no connection feeds would never
        // see its channel close and would park forever.
        return Err(WorkloadError::OutOfRange {
            what: "service workers",
            value: config.workers as f64,
            bounds: "[1, connections]",
        });
    }
    if config.requests == 0 {
        return Err(WorkloadError::EmptyDomain {
            what: "service request stream",
        });
    }
    if config.batch == 0 {
        return Err(WorkloadError::ZeroWorkers {
            what: "service batch size",
        });
    }
    if config.preload_keys == 0 {
        return Err(WorkloadError::EmptyDomain {
            what: "service key space",
        });
    }
    if !config.offered_rps.is_finite() || config.offered_rps <= 0.0 {
        return Err(WorkloadError::OutOfRange {
            what: "service offered load",
            value: config.offered_rps,
            bounds: "(0, inf)",
        });
    }
    if !config.get_fraction.is_finite() || !(0.0..=1.0).contains(&config.get_fraction) {
        return Err(WorkloadError::OutOfRange {
            what: "service get fraction",
            value: config.get_fraction,
            bounds: "[0, 1]",
        });
    }
    if let Some(d) = config.deadline {
        if d.is_zero() {
            return Err(WorkloadError::OutOfRange {
                what: "service deadline",
                value: 0.0,
                bounds: "(0, inf) ns",
            });
        }
    }
    if config.drop_expired && config.deadline.is_none() {
        return Err(WorkloadError::OutOfRange {
            what: "service drop_expired",
            value: 1.0,
            bounds: "requires a deadline budget",
        });
    }
    if config.inflight_window == Some(0) {
        return Err(WorkloadError::OutOfRange {
            what: "service inflight window",
            value: 0.0,
            bounds: "[1, inf)",
        });
    }
    if !config.backoff_jitter.is_finite() || !(0.0..=1.0).contains(&config.backoff_jitter) {
        return Err(WorkloadError::OutOfRange {
            what: "service backoff jitter",
            value: config.backoff_jitter,
            bounds: "[0, 1]",
        });
    }
    if config.breaker_threshold > 0 && config.breaker_cooldown.is_zero() {
        return Err(WorkloadError::OutOfRange {
            what: "service breaker cooldown",
            value: 0.0,
            bounds: "(0, inf) ns",
        });
    }
    Zipf::try_new(config.preload_keys, config.zipf_theta, config.seed)?;
    Ok(())
}

/// What the service measured.
#[derive(Clone, Debug)]
pub struct ServiceResult {
    /// Requests the sources generated (admitted or shed) — always the
    /// configured total.
    pub offered: u64,
    /// Requests completed with a response (equals `offered` on an
    /// unprotected fault-free run).
    pub completed: u64,
    /// Served responses that met their deadline budget — the goodput
    /// numerator. Equals `completed` when no budget is configured.
    pub served_in_deadline: u64,
    /// Requests refused without execution: admission-window sheds at
    /// the connection fan-in plus breaker sheds at the worker.
    pub shed: u64,
    /// Requests dropped for an expired deadline (before execution) or
    /// completed too late to count (after execution).
    pub expired: u64,
    /// Requests whose response was lost and whose retry budget ran
    /// out.
    pub failed: u64,
    /// Retry attempts scheduled (each is a re-execution, not a new
    /// offered request).
    pub retries: u64,
    /// Circuit-breaker trips across all workers (closed/half-open →
    /// open transitions).
    pub breaker_trips: u64,
    /// Virtual time from gate-open to the last completion.
    pub elapsed: Duration,
    /// Coordinated-omission-free latencies of *served* requests,
    /// merged across workers.
    pub latency: LatencyHist,
    /// Wake-ups across all workers (each one drains ≥ 1 request), so
    /// `completed / wakeups` is the achieved batching factor.
    pub wakeups: u64,
}

impl ServiceResult {
    /// Achieved throughput (all served responses) in requests per
    /// second of virtual time.
    pub fn achieved_rps(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.completed as f64 / (self.elapsed.as_ns_f64() * 1e-9)
    }

    /// Goodput: served-within-deadline responses per second of virtual
    /// time.
    pub fn goodput_rps(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.served_in_deadline as f64 / (self.elapsed.as_ns_f64() * 1e-9)
    }

    /// The conservation invariant: every offered request resolved
    /// exactly one way.
    pub fn conservation_holds(&self) -> bool {
        self.offered == self.completed + self.shed + self.expired + self.failed
    }
}

/// Per-worker circuit breaker: consecutive deadline misses trip it
/// open; after a virtual-time cooldown it half-opens and the next
/// request is the probe.
enum Breaker {
    /// Passing traffic; `misses` consecutive deadline misses so far.
    Closed { misses: u32 },
    /// Shedding everything until `until`.
    Open { until: SimTime },
    /// Cooldown elapsed; the next processed request is the probe.
    HalfOpen,
}

/// Worker-local accounting, merged once at exit.
struct Tally {
    hist: LatencyHist,
    served: u64,
    in_deadline: u64,
    shed: u64,
    expired: u64,
    failed: u64,
    retries: u64,
    breaker_trips: u64,
    wakeups: u64,
    last: SimTime,
}

impl Tally {
    fn new() -> Self {
        Tally {
            hist: LatencyHist::new(),
            served: 0,
            in_deadline: 0,
            shed: 0,
            expired: 0,
            failed: 0,
            retries: 0,
            breaker_trips: 0,
            wakeups: 0,
            last: SimTime::ZERO,
        }
    }

    fn merge_into(self, total: &mut Tally) {
        total.hist.merge(&self.hist);
        total.served += self.served;
        total.in_deadline += self.in_deadline;
        total.shed += self.shed;
        total.expired += self.expired;
        total.failed += self.failed;
        total.retries += self.retries;
        total.breaker_trips += self.breaker_trips;
        total.wakeups += self.wakeups;
        total.last = total.last.max(self.last);
    }
}

/// One server worker: drains its fan-in queue, enforces the protection
/// layer, and executes requests against the store.
struct Worker {
    cfg: ServiceConfig,
    idx: usize,
    store: Arc<KvStore>,
    quartz: Option<Arc<Quartz>>,
    faults: Arc<dyn ServiceFaultInjector>,
    /// This worker's fan-in admission gauge; decremented once per
    /// resolved request (retries keep their slot).
    inflight: Arc<AtomicU64>,
    breaker: Breaker,
    /// Pending retries as `(due, request)`; processed in ascending
    /// `(due, id)` order for determinism. Bounded by the admission
    /// window, so a linear scan is fine.
    retries: Vec<(SimTime, Request)>,
    /// Processed-request counter — the fault seam's sequence number.
    seq: u64,
    tally: Tally,
}

impl Worker {
    /// Index of the next-due retry, by ascending `(due, id)`.
    fn next_retry(&self) -> Option<usize> {
        (0..self.retries.len()).min_by_key(|&i| (self.retries[i].0, self.retries[i].1.id))
    }

    /// A request leaves the system: free its admission slot.
    fn release(&self) {
        self.inflight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Records a deadline miss against the breaker.
    fn breaker_miss(&mut self, now: SimTime) {
        if self.cfg.breaker_threshold == 0 {
            return;
        }
        match &mut self.breaker {
            Breaker::Closed { misses } => {
                *misses += 1;
                if *misses >= self.cfg.breaker_threshold {
                    self.breaker = Breaker::Open {
                        until: now + self.cfg.breaker_cooldown,
                    };
                    self.tally.breaker_trips += 1;
                }
            }
            // The half-open probe missed: re-open for another cooldown.
            Breaker::HalfOpen => {
                self.breaker = Breaker::Open {
                    until: now + self.cfg.breaker_cooldown,
                };
                self.tally.breaker_trips += 1;
            }
            Breaker::Open { .. } => {}
        }
    }

    /// Records an in-deadline success: the breaker (re)closes.
    fn breaker_ok(&mut self) {
        self.breaker = Breaker::Closed { misses: 0 };
    }

    /// Resolves one request end-to-end: breaker gate, deadline
    /// pre-check, fault-seam stall/delay, execution, response
    /// accounting (drop → retry/failed, completion → served/expired).
    fn process(&mut self, c: &mut ThreadCtx, req: Request) {
        // Breaker gate: an open breaker sheds without executing; once
        // the cooldown elapses, this request is the half-open probe.
        if self.cfg.breaker_threshold > 0 {
            match self.breaker {
                Breaker::Open { until } if c.now() < until => {
                    self.tally.shed += 1;
                    self.release();
                    self.tally.last = c.now();
                    return;
                }
                Breaker::Open { .. } => self.breaker = Breaker::HalfOpen,
                _ => {}
            }
        }
        // Drop-expired-before-execute: the budget check at the worker.
        if self.cfg.drop_expired {
            if let Some(dl) = req.deadline {
                if c.now() > dl {
                    debug_assert!(deadline_remaining(dl, c.now()).is_zero());
                    self.tally.expired += 1;
                    self.release();
                    self.breaker_miss(c.now());
                    self.tally.last = c.now();
                    return;
                }
            }
        }
        let seq = self.seq;
        self.seq += 1;
        let stall = self.faults.worker_stall(self.idx, seq);
        if !stall.is_zero() {
            c.compute_ns(stall.as_ns_f64());
        }
        let delay = self.faults.worker_delay(self.idx, seq);
        if !delay.is_zero() {
            c.compute_ns(delay.as_ns_f64());
        }
        if req.is_get {
            c.compute_ns(self.cfg.get_compute_ns);
            self.store.get(c, req.key);
        } else {
            c.compute_ns(self.cfg.put_compute_ns);
            self.store
                .put(c, self.quartz.as_deref(), req.key, req.value);
        }
        if self.faults.drop_response(self.idx, seq) {
            // The work happened but the reply was lost. Retry after a
            // deterministic backoff, or fail once the budget runs out.
            if req.attempt < self.cfg.max_retries {
                let wait = backoff_delay(
                    self.cfg.seed,
                    req.id,
                    req.attempt,
                    self.cfg.backoff_base,
                    self.cfg.backoff_jitter,
                );
                self.tally.retries += 1;
                self.retries.push((
                    c.now() + wait,
                    Request {
                        attempt: req.attempt + 1,
                        ..req
                    },
                ));
            } else {
                self.tally.failed += 1;
                self.release();
            }
            self.tally.last = c.now();
            return;
        }
        let now = c.now();
        let in_deadline = req.deadline.is_none_or(|dl| now <= dl);
        if self.cfg.drop_expired && !in_deadline {
            // Completed, but too late to count as a response.
            self.tally.expired += 1;
            self.release();
            self.breaker_miss(now);
        } else {
            self.tally.served += 1;
            if in_deadline {
                self.tally.in_deadline += 1;
                self.breaker_ok();
            } else {
                self.breaker_miss(now);
            }
            self.tally
                .hist
                .record(now.saturating_duration_since(req.arrival));
            self.release();
        }
        self.tally.last = now;
    }

    /// The worker main loop: batch-drain the fan-in queue, interleaving
    /// due retries via `chan_recv_timeout` bounded by the next retry's
    /// due instant; after the queue closes, wait out and resolve the
    /// retry backlog.
    fn run(mut self, c: &mut ThreadCtx, queue: &SimChannel<Request>) -> Tally {
        let mut batch = Vec::with_capacity(self.cfg.batch);
        loop {
            let first = match self.next_retry() {
                Some(i) if self.retries[i].0 <= c.now() => {
                    let (_, req) = self.retries.swap_remove(i);
                    self.process(c, req);
                    continue;
                }
                Some(i) => {
                    let due = self.retries[i].0;
                    match c.chan_recv_timeout(queue, due.saturating_duration_since(c.now())) {
                        Ok(r) => Some(r),
                        // The retry is due now; the loop top takes it.
                        Err(RecvTimeoutError::Timeout) => continue,
                        Err(RecvTimeoutError::Closed) => None,
                    }
                }
                None => c.chan_recv(queue),
            };
            let Some(first) = first else { break };
            self.tally.wakeups += 1;
            batch.push(first);
            while batch.len() < self.cfg.batch {
                match c.chan_try_recv(queue) {
                    Ok(r) => batch.push(r),
                    Err(_) => break,
                }
            }
            // Per-wake-up dispatch cost, amortized over the batch.
            c.compute_ns(self.cfg.dispatch_ns);
            for req in batch.drain(..) {
                self.process(c, req);
            }
        }
        // Queue closed: wait out the remaining retry backlog in due
        // order and resolve it.
        while let Some(i) = self.next_retry() {
            let (due, req) = self.retries.swap_remove(i);
            let wait = due.saturating_duration_since(c.now());
            if !wait.is_zero() {
                c.compute_ns(wait.as_ns_f64());
            }
            self.process(c, req);
        }
        self.tally
    }
}

/// A fully wired service scenario: channels and open-loop sources are
/// registered on the engine at construction; [`KvService::into_root`]
/// yields the root closure that preloads the store, opens the arrival
/// gate, runs the workers, and deposits a [`ServiceResult`].
pub struct KvService {
    config: ServiceConfig,
    quartz: Option<Arc<Quartz>>,
    faults: Arc<dyn ServiceFaultInjector>,
    queues: Vec<SimChannel<Request>>,
    /// Virtual instant (ps) from which sources inject; `u64::MAX` keeps
    /// the gate shut while the root preloads the store.
    gate_ps: Arc<AtomicU64>,
    /// Admitted-but-unresolved requests, one gauge per worker fan-in.
    inflight: Vec<Arc<AtomicU64>>,
    /// Requests shed at the connection fan-in by the admission window.
    shed_at_gate: Arc<AtomicU64>,
    result: Arc<Mutex<Option<ServiceResult>>>,
}

/// Poll gap while the gate is shut. Preload time is deterministic
/// virtual time, so the first post-open firing is too.
const GATE_POLL: Duration = Duration::from_us(100);

impl KvService {
    /// Wires `config` onto `engine` with no service faults. See
    /// [`KvService::try_install_with_faults`].
    ///
    /// # Errors
    ///
    /// See [`validate_service_config`].
    pub fn try_install(
        engine: &Engine,
        quartz: Option<Arc<Quartz>>,
        config: ServiceConfig,
    ) -> Result<Self, WorkloadError> {
        Self::try_install_with_faults(engine, quartz, config, Arc::new(NoServiceFaults))
    }

    /// Wires `config` onto `engine`: M fan-in queues, N open-loop
    /// connection sources, with `faults` installed at the service seam.
    /// Must be called before `engine.run`.
    ///
    /// # Errors
    ///
    /// See [`validate_service_config`].
    pub fn try_install_with_faults(
        engine: &Engine,
        quartz: Option<Arc<Quartz>>,
        config: ServiceConfig,
        faults: Arc<dyn ServiceFaultInjector>,
    ) -> Result<Self, WorkloadError> {
        validate_service_config(&config)?;
        let queues: Vec<SimChannel<Request>> =
            (0..config.workers).map(|_| engine.channel()).collect();
        let gate_ps = Arc::new(AtomicU64::new(u64::MAX));
        let inflight: Vec<Arc<AtomicU64>> = (0..config.workers)
            .map(|_| Arc::new(AtomicU64::new(0)))
            .collect();
        let shed_at_gate = Arc::new(AtomicU64::new(0));
        let per_conn_rps = config.offered_rps / config.connections as f64;
        let mean_gap_ns = 1.0e9 / per_conn_rps;
        let base = config.requests / config.connections as u64;
        let extra = (config.requests % config.connections as u64) as usize;
        let window = config.inflight_window.map(|w| w as u64);
        for conn in 0..config.connections {
            let queue = queues[conn % config.workers].clone();
            let gate = Arc::clone(&gate_ps);
            let gauge = Arc::clone(&inflight[conn % config.workers]);
            let shed = Arc::clone(&shed_at_gate);
            let conn_seed = config
                .seed
                .wrapping_add((conn as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
            let mut zipf = Zipf::try_new(config.preload_keys, config.zipf_theta, conn_seed)?;
            let mut rng = Rng::new(conn_seed ^ 0xC0FF_EE00_D15E_A5E5);
            let mut remaining = base + u64::from(conn < extra);
            let get_fraction = config.get_fraction;
            let deadline = config.deadline;
            let mut sent = 0u64;
            engine.add_open_loop_source(GATE_POLL, &[queue.id()], move |api| {
                let open_ps = gate.load(Ordering::Acquire);
                if api.fire_time().as_ps() < open_ps {
                    // Gate shut (or not yet reached): poll again without
                    // consuming any sampling stream.
                    return;
                }
                if remaining == 0 {
                    api.stop();
                    return;
                }
                let key = zipf.sample();
                let coin = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let arrival = api.fire_time();
                let req = Request {
                    arrival,
                    deadline: deadline.map(|d| arrival + d),
                    id: ((conn as u64) << 40) | sent,
                    attempt: 0,
                    key,
                    is_get: coin < get_fraction,
                    value: sent,
                };
                // Admission control at the fan-in: an arrival bound
                // for a worker whose inflight window is full is shed
                // at the source, before it can queue. Source firings
                // are serialized under the scheduler lock, so the
                // gauge reads deterministically.
                match window {
                    Some(w) if gauge.load(Ordering::Relaxed) >= w => {
                        shed.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {
                        gauge.fetch_add(1, Ordering::Relaxed);
                        api.send(&queue, req);
                    }
                }
                sent += 1;
                remaining -= 1;
                if remaining == 0 {
                    api.stop();
                    return;
                }
                // Seeded-exponential inter-arrival gap (Poisson arrivals).
                let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let gap_ns = (-(1.0 - u).ln() * mean_gap_ns).max(1.0);
                api.reschedule_in(Duration::from_ns_f64(gap_ns));
            });
        }
        Ok(KvService {
            config,
            quartz,
            faults,
            queues,
            gate_ps,
            inflight,
            shed_at_gate,
            result: Arc::new(Mutex::new(None)),
        })
    }

    /// The slot [`KvService::into_root`]'s closure deposits the result
    /// into when the run completes.
    pub fn result_slot(&self) -> Arc<Mutex<Option<ServiceResult>>> {
        Arc::clone(&self.result)
    }

    /// Consumes the handle into the root closure for
    /// [`Engine::run`](quartz_threadsim::Engine::run): create + preload
    /// the store, open the arrival gate, spawn the M workers, join
    /// them, and merge their tallies.
    pub fn into_root(self) -> impl FnOnce(&mut ThreadCtx) + Send + 'static {
        let KvService {
            config,
            quartz,
            faults,
            queues,
            gate_ps,
            inflight,
            shed_at_gate,
            result,
        } = self;
        move |ctx: &mut ThreadCtx| {
            let store = Arc::new(KvStore::create(ctx, KvConfig::new(NodeId(0))));
            preload(ctx, &store, quartz.as_deref(), config.preload_keys);
            // Open the gate: sources begin injecting at their next poll.
            gate_ps.store(ctx.now().as_ps(), Ordering::Release);
            let t_open = ctx.now();
            let tallies: Arc<Mutex<Tally>> = Arc::new(Mutex::new(Tally::new()));
            let mut kids = Vec::with_capacity(config.workers);
            for (idx, queue) in queues.into_iter().enumerate() {
                let worker = Worker {
                    cfg: config,
                    idx,
                    store: Arc::clone(&store),
                    quartz: quartz.clone(),
                    faults: Arc::clone(&faults),
                    inflight: Arc::clone(&inflight[idx]),
                    breaker: Breaker::Closed { misses: 0 },
                    retries: Vec::new(),
                    seq: 0,
                    tally: Tally::new(),
                };
                let tallies = Arc::clone(&tallies);
                kids.push(ctx.spawn(move |c| {
                    let local = worker.run(c, &queue);
                    local.merge_into(&mut tallies.lock());
                }));
            }
            for k in kids {
                ctx.join(k);
            }
            let total = {
                let mut tl = tallies.lock();
                std::mem::replace(&mut *tl, Tally::new())
            };
            *result.lock() = Some(ServiceResult {
                offered: config.requests,
                completed: total.served,
                served_in_deadline: total.in_deadline,
                shed: total.shed + shed_at_gate.load(Ordering::Relaxed),
                expired: total.expired,
                failed: total.failed,
                retries: total.retries,
                breaker_trips: total.breaker_trips,
                elapsed: total.last.saturating_duration_since(t_open),
                latency: total.hist,
                wakeups: total.wakeups,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use quartz_memsim::{MemSimConfig, MemorySystem};
    use quartz_platform::{Architecture, Platform, PlatformConfig};

    fn run_with(config: ServiceConfig, faults: Arc<dyn ServiceFaultInjector>) -> ServiceResult {
        let platform =
            Platform::new(PlatformConfig::new(Architecture::SandyBridge).with_perfect_counters());
        let mem = Arc::new(MemorySystem::new(
            platform,
            MemSimConfig::default().without_jitter(),
        ));
        let engine = Engine::new(mem);
        let svc = KvService::try_install_with_faults(&engine, None, config, faults)
            .expect("valid config");
        let slot = svc.result_slot();
        engine.run(svc.into_root());
        let r = slot.lock().take().expect("service deposited a result");
        r
    }

    fn run(config: ServiceConfig) -> ServiceResult {
        run_with(config, Arc::new(NoServiceFaults))
    }

    fn quick() -> ServiceConfig {
        ServiceConfig {
            connections: 4,
            workers: 2,
            requests: 4_000,
            offered_rps: 2.0e6,
            preload_keys: 2_000,
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn completes_every_request_exactly_once() {
        let r = run(quick());
        assert_eq!(r.completed, 4_000);
        assert_eq!(r.latency.count(), 4_000);
        assert!(r.conservation_holds());
        assert_eq!((r.shed, r.expired, r.failed), (0, 0, 0));
        assert!(r.wakeups > 0 && r.wakeups <= r.completed);
        assert!(r.achieved_rps() > 0.0);
        assert!(r.latency.p50() <= r.latency.p99());
        assert!(r.latency.p99() <= r.latency.p999());
    }

    #[test]
    fn run_is_deterministic() {
        let a = run(quick());
        let b = run(quick());
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.wakeups, b.wakeups);
    }

    #[test]
    fn overload_inflates_tail_latency() {
        // Same work at 20x the offered load: queues build up, and the
        // open-loop arrival stamps charge the queueing to the tail.
        let light = run(ServiceConfig {
            offered_rps: 0.5e6,
            ..quick()
        });
        let heavy = run(ServiceConfig {
            offered_rps: 10.0e6,
            ..quick()
        });
        assert!(
            heavy.latency.p999() > 2 * light.latency.p999(),
            "overload must show up in the tail: light p999 {} heavy p999 {}",
            light.latency.p999(),
            heavy.latency.p999()
        );
    }

    #[test]
    fn protected_overload_sheds_and_bounds_admitted_tail() {
        // Long enough past the knee that the unprotected backlog
        // dominates: with ~2e6 rps of capacity, 10e6 rps offered for
        // 16k requests leaves most of the run in deep queueing, where
        // goodput collapses unless the window sheds the excess.
        let overload = ServiceConfig {
            offered_rps: 10.0e6,
            requests: 16_000,
            ..quick()
        };
        let unprotected = run(ServiceConfig {
            deadline: Some(Duration::from_ms(1)),
            ..overload
        });
        let protected = run(overload.protected());
        assert!(protected.conservation_holds(), "{protected:?}");
        assert!(unprotected.conservation_holds(), "{unprotected:?}");
        assert!(
            protected.shed > 0,
            "admission window must shed past the knee: {protected:?}"
        );
        // The admitted tail stays bounded while the unprotected tail
        // diverges with queue depth.
        assert!(
            protected.latency.p999() < unprotected.latency.p999() / 2,
            "protected p999 {} vs unprotected {}",
            protected.latency.p999(),
            unprotected.latency.p999()
        );
        // Goodput: protection trades raw completions for responses
        // that still matter.
        assert!(protected.goodput_rps() > unprotected.goodput_rps());
    }

    #[test]
    fn protected_run_is_deterministic() {
        let cfg = ServiceConfig {
            offered_rps: 8.0e6,
            ..quick()
        }
        .protected();
        let a = run(cfg);
        let b = run(cfg);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.shed, b.shed);
        assert_eq!(a.expired, b.expired);
        assert_eq!(a.failed, b.failed);
        assert_eq!(a.retries, b.retries);
        assert_eq!(a.breaker_trips, b.breaker_trips);
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.latency, b.latency);
    }

    /// Drops every response on every worker.
    struct DropEverything;
    impl ServiceFaultInjector for DropEverything {
        fn drop_response(&self, _worker: usize, _seq: u64) -> bool {
            true
        }
    }

    #[test]
    fn dropped_responses_retry_then_fail_with_conservation() {
        let cfg = ServiceConfig {
            requests: 500,
            max_retries: 2,
            ..quick()
        };
        let r = run_with(cfg, Arc::new(DropEverything));
        assert_eq!(r.completed, 0, "no response ever survives");
        assert_eq!(r.failed, 500);
        // Every request burned its full retry budget.
        assert_eq!(r.retries, 2 * 500);
        assert!(r.conservation_holds(), "{r:?}");
    }

    /// Inflates every op on worker 0 far past any deadline.
    struct WedgeWorkerZero;
    impl ServiceFaultInjector for WedgeWorkerZero {
        fn worker_delay(&self, worker: usize, _seq: u64) -> Duration {
            if worker == 0 {
                Duration::from_ms(2)
            } else {
                Duration::ZERO
            }
        }
    }

    #[test]
    fn breaker_trips_on_consecutive_misses_and_sheds() {
        let cfg = ServiceConfig {
            breaker_threshold: 4,
            ..quick().protected()
        };
        let r = run_with(cfg, Arc::new(WedgeWorkerZero));
        assert!(
            r.breaker_trips > 0,
            "slow worker must trip its breaker: {r:?}"
        );
        assert!(r.shed > 0);
        assert!(r.conservation_holds(), "{r:?}");
        // The healthy worker keeps serving.
        assert!(r.completed > 0);
    }

    #[test]
    fn backoff_schedule_is_pure_and_bounded() {
        let base = Duration::from_us(50);
        for attempt in 0..4 {
            let a = backoff_delay(7, 99, attempt, base, 0.5);
            let b = backoff_delay(7, 99, attempt, base, 0.5);
            assert_eq!(a, b, "pure function of (seed, request, attempt)");
            let lo = base.as_ns_f64() * (1 << attempt) as f64;
            let hi = lo * 1.5;
            let got = a.as_ns_f64();
            assert!(
                got >= lo && got < hi,
                "attempt {attempt}: {got} not in [{lo}, {hi})"
            );
        }
        assert_ne!(
            backoff_delay(7, 99, 1, base, 0.5),
            backoff_delay(8, 99, 1, base, 0.5),
            "seed must decorrelate the jitter"
        );
    }

    #[test]
    fn invalid_configs_are_typed_errors() {
        for (cfg, what) in [
            (
                ServiceConfig {
                    connections: 0,
                    ..ServiceConfig::default()
                },
                "service connections",
            ),
            (
                ServiceConfig {
                    workers: 0,
                    ..ServiceConfig::default()
                },
                "service workers",
            ),
            (
                ServiceConfig {
                    batch: 0,
                    ..ServiceConfig::default()
                },
                "service batch size",
            ),
        ] {
            match validate_service_config(&cfg) {
                Err(WorkloadError::ZeroWorkers { what: w }) => assert_eq!(w, what),
                other => panic!("{what}: expected ZeroWorkers, got {other:?}"),
            }
        }
        assert!(matches!(
            validate_service_config(&ServiceConfig {
                requests: 0,
                ..ServiceConfig::default()
            }),
            Err(WorkloadError::EmptyDomain { .. })
        ));
        for cfg in [
            ServiceConfig {
                offered_rps: 0.0,
                ..ServiceConfig::default()
            },
            ServiceConfig {
                drop_expired: true,
                ..ServiceConfig::default()
            },
            ServiceConfig {
                inflight_window: Some(0),
                ..ServiceConfig::default()
            },
            ServiceConfig {
                backoff_jitter: 1.5,
                ..ServiceConfig::default()
            },
            ServiceConfig {
                deadline: Some(Duration::ZERO),
                ..ServiceConfig::default()
            },
            ServiceConfig {
                breaker_threshold: 3,
                breaker_cooldown: Duration::ZERO,
                ..ServiceConfig::default()
            },
        ] {
            assert!(
                matches!(
                    validate_service_config(&cfg),
                    Err(WorkloadError::OutOfRange { .. })
                ),
                "{cfg:?}"
            );
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn backoff_is_deterministic_and_within_declared_bounds(
                seed in 0u64..1 << 48,
                request in 0u64..1 << 40,
                attempt in 0u32..8,
                base_us in 1u64..1_000,
                jitter_pct in 0u32..101,
            ) {
                let base = Duration::from_us(base_us);
                let jitter = f64::from(jitter_pct) / 100.0;
                let a = backoff_delay(seed, request, attempt, base, jitter);
                let b = backoff_delay(seed, request, attempt, base, jitter);
                prop_assert_eq!(a, b);
                let lo = base.as_ns_f64() * (1u64 << attempt) as f64;
                let hi = lo * (1.0 + jitter);
                let got = a.as_ns_f64();
                prop_assert!(
                    got >= lo && (got < hi || jitter == 0.0 && got == lo),
                    "attempt {}: {} outside [{}, {})",
                    attempt, got, lo, hi
                );
            }

            #[test]
            fn deadline_arithmetic_never_underflows(
                arrival_ns in 0u64..1 << 40,
                budget_ns in 1u64..1 << 30,
                elapsed_ns in 0u64..1 << 41,
            ) {
                let arrival = SimTime::ZERO + Duration::from_ns(arrival_ns);
                let deadline = arrival + Duration::from_ns(budget_ns);
                let now = SimTime::ZERO + Duration::from_ns(elapsed_ns);
                let left = deadline_remaining(deadline, now);
                // Saturating at the expiry boundary: zero at and past
                // the deadline, the exact budget remainder before it.
                if elapsed_ns >= arrival_ns + budget_ns {
                    prop_assert!(left.is_zero());
                } else {
                    prop_assert_eq!(
                        left,
                        Duration::from_ns(arrival_ns + budget_ns - elapsed_ns)
                    );
                }
            }

            #[test]
            fn conservation_holds_across_random_configs(
                case in 0u64..1 << 32,
            ) {
                // Derive a small random scenario from the case seed —
                // load straddling the knee, protection knobs toggled
                // independently.
                let h = |k: u64| super::super::splitmix64(case ^ super::super::splitmix64(k));
                let connections = 2 + (h(1) % 3) as usize; // 2..=4
                let workers = 1 + (h(2) as usize % connections.min(3));
                let cfg = ServiceConfig {
                    connections,
                    workers,
                    requests: 400 + h(3) % 400,
                    offered_rps: 1.0e6 + (h(4) % 9) as f64 * 1.0e6,
                    preload_keys: 1_000,
                    seed: h(5),
                    deadline: Some(Duration::from_us(200 + h(6) % 1_000)),
                    drop_expired: h(7) % 2 == 0,
                    inflight_window: match h(8) % 3 {
                        0 => None,
                        m => Some(16 * m as usize),
                    },
                    max_retries: (h(9) % 3) as u32,
                    breaker_threshold: (h(10) % 2) as u32 * 8,
                    ..ServiceConfig::default()
                };
                let r = run(cfg);
                prop_assert!(
                    r.conservation_holds(),
                    "offered {} != served {} + shed {} + expired {} + failed {} ({:?})",
                    r.offered, r.completed, r.shed, r.expired, r.failed, cfg
                );
                prop_assert!(r.served_in_deadline <= r.completed);
            }
        }
    }
}
