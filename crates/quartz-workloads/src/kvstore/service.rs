//! Open-loop PM-backed KV *service* — the "heavy traffic" scenario.
//!
//! The paper's closed-loop kernels (Fig. 15/16) measure service rates,
//! but NVM latency reshapes *application* performance most visibly
//! under open-loop load, where queueing amplifies slow requests into
//! tail latency. This module marries the deterministic scheduler with a
//! discrete-event request layer, in the style of Shadow's
//! real-app-on-simulated-network architecture:
//!
//! * **N connections**, each an [`open-loop event
//!   source`](quartz_threadsim::Engine::add_open_loop_source) with
//!   seeded-exponential inter-arrival gaps and its own zipfian key
//!   stream (deterministic per `(seed, connection)`), fan in to
//! * **M server workers**, each draining its own [`SimChannel`]
//!   fan-in queue (connection *c* feeds worker *c mod M*) in
//!   configurable batches over the lock-striped [`KvStore`].
//!
//! Every request is timestamped **at arrival** — the source's firing
//! instant, independent of any queue state — so the recorded latencies
//! are coordinated-omission-free: a request that sat behind a slow NVM
//! write is charged its full sojourn time.
//!
//! Host-lock discipline: per-worker tallies live in thread-local
//! [`LatencyHist`]s and merge once into a single `parking_lot` leaf
//! mutex at worker exit; nothing host-side is shared on the request
//! path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use quartz::{LatencyHist, Quartz};
use quartz_platform::time::{Duration, SimTime};
use quartz_platform::NodeId;
use quartz_threadsim::{Engine, SimChannel, ThreadCtx};

use crate::chain::Rng;
use crate::error::WorkloadError;
use crate::kvstore::btree::{KvConfig, KvStore};
use crate::kvstore::driver::preload;
use crate::zipf::Zipf;

/// One in-flight request.
#[derive(Clone, Copy, Debug)]
struct Request {
    /// Injection instant (the open-loop arrival, *not* the dequeue).
    arrival: SimTime,
    key: u64,
    is_get: bool,
    value: u64,
}

/// Service scenario parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServiceConfig {
    /// Open-loop client connections (N). The offered load splits evenly
    /// across them.
    pub connections: usize,
    /// Server worker threads (M). Connection `c` feeds worker `c % M`.
    pub workers: usize,
    /// Total requests injected across all connections.
    pub requests: u64,
    /// Total offered load in requests/second of virtual time.
    pub offered_rps: f64,
    /// Maximum requests a worker drains per wake-up; the per-wake-up
    /// dispatch cost amortizes over the batch.
    pub batch: usize,
    /// Per-wake-up dispatch cost in ns (scheduling, epoll-style readying).
    pub dispatch_ns: f64,
    /// Keys preloaded before the gate opens.
    pub preload_keys: u64,
    /// Fraction of requests that are gets.
    pub get_fraction: f64,
    /// Zipfian skew of the key distribution.
    pub zipf_theta: f64,
    /// Host CPU work per get, in ns.
    pub get_compute_ns: f64,
    /// Host CPU work per put, in ns.
    pub put_compute_ns: f64,
    /// Master seed; each connection derives its own streams.
    pub seed: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            connections: 8,
            workers: 4,
            requests: 100_000,
            offered_rps: 1.0e6,
            batch: 8,
            dispatch_ns: 150.0,
            preload_keys: 20_000,
            get_fraction: 0.9,
            zipf_theta: 0.9,
            get_compute_ns: 300.0,
            put_compute_ns: 400.0,
            seed: 0x5EB5,
        }
    }
}

/// Validates a [`ServiceConfig`].
///
/// # Errors
///
/// Typed errors for zero connections/workers/requests/batch, an empty
/// key space, or a rate/fraction/skew outside range.
pub fn validate_service_config(config: &ServiceConfig) -> Result<(), WorkloadError> {
    if config.connections == 0 {
        return Err(WorkloadError::ZeroWorkers {
            what: "service connections",
        });
    }
    if config.workers == 0 {
        return Err(WorkloadError::ZeroWorkers {
            what: "service workers",
        });
    }
    if config.workers > config.connections {
        // A worker whose fan-in queue no connection feeds would never
        // see its channel close and would park forever.
        return Err(WorkloadError::OutOfRange {
            what: "service workers",
            value: config.workers as f64,
            bounds: "[1, connections]",
        });
    }
    if config.requests == 0 {
        return Err(WorkloadError::EmptyDomain {
            what: "service request stream",
        });
    }
    if config.batch == 0 {
        return Err(WorkloadError::ZeroWorkers {
            what: "service batch size",
        });
    }
    if config.preload_keys == 0 {
        return Err(WorkloadError::EmptyDomain {
            what: "service key space",
        });
    }
    if !config.offered_rps.is_finite() || config.offered_rps <= 0.0 {
        return Err(WorkloadError::OutOfRange {
            what: "service offered load",
            value: config.offered_rps,
            bounds: "(0, inf)",
        });
    }
    if !config.get_fraction.is_finite() || !(0.0..=1.0).contains(&config.get_fraction) {
        return Err(WorkloadError::OutOfRange {
            what: "service get fraction",
            value: config.get_fraction,
            bounds: "[0, 1]",
        });
    }
    Zipf::try_new(config.preload_keys, config.zipf_theta, config.seed)?;
    Ok(())
}

/// What the service measured.
#[derive(Clone, Debug)]
pub struct ServiceResult {
    /// Requests completed (always equals the configured total on a
    /// clean run).
    pub completed: u64,
    /// Virtual time from gate-open to the last completion.
    pub elapsed: Duration,
    /// Coordinated-omission-free request latencies, merged across
    /// workers.
    pub latency: LatencyHist,
    /// Wake-ups across all workers (each one drains ≥ 1 request), so
    /// `completed / wakeups` is the achieved batching factor.
    pub wakeups: u64,
}

impl ServiceResult {
    /// Achieved throughput in requests per second of virtual time.
    pub fn achieved_rps(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.completed as f64 / (self.elapsed.as_ns_f64() * 1e-9)
    }
}

/// A fully wired service scenario: channels and open-loop sources are
/// registered on the engine at construction; [`KvService::into_root`]
/// yields the root closure that preloads the store, opens the arrival
/// gate, runs the workers, and deposits a [`ServiceResult`].
pub struct KvService {
    config: ServiceConfig,
    quartz: Option<Arc<Quartz>>,
    queues: Vec<SimChannel<Request>>,
    /// Virtual instant (ps) from which sources inject; `u64::MAX` keeps
    /// the gate shut while the root preloads the store.
    gate_ps: Arc<AtomicU64>,
    result: Arc<Mutex<Option<ServiceResult>>>,
}

/// Poll gap while the gate is shut. Preload time is deterministic
/// virtual time, so the first post-open firing is too.
const GATE_POLL: Duration = Duration::from_us(100);

impl KvService {
    /// Wires `config` onto `engine`: M fan-in queues, N open-loop
    /// connection sources. Must be called before `engine.run`.
    ///
    /// # Errors
    ///
    /// See [`validate_service_config`].
    pub fn try_install(
        engine: &Engine,
        quartz: Option<Arc<Quartz>>,
        config: ServiceConfig,
    ) -> Result<Self, WorkloadError> {
        validate_service_config(&config)?;
        let queues: Vec<SimChannel<Request>> =
            (0..config.workers).map(|_| engine.channel()).collect();
        let gate_ps = Arc::new(AtomicU64::new(u64::MAX));
        let per_conn_rps = config.offered_rps / config.connections as f64;
        let mean_gap_ns = 1.0e9 / per_conn_rps;
        let base = config.requests / config.connections as u64;
        let extra = (config.requests % config.connections as u64) as usize;
        for conn in 0..config.connections {
            let queue = queues[conn % config.workers].clone();
            let gate = Arc::clone(&gate_ps);
            let conn_seed = config
                .seed
                .wrapping_add((conn as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
            let mut zipf = Zipf::try_new(config.preload_keys, config.zipf_theta, conn_seed)?;
            let mut rng = Rng::new(conn_seed ^ 0xC0FF_EE00_D15E_A5E5);
            let mut remaining = base + u64::from(conn < extra);
            let get_fraction = config.get_fraction;
            let mut sent = 0u64;
            engine.add_open_loop_source(GATE_POLL, &[queue.id()], move |api| {
                let open_ps = gate.load(Ordering::Acquire);
                if api.fire_time().as_ps() < open_ps {
                    // Gate shut (or not yet reached): poll again without
                    // consuming any sampling stream.
                    return;
                }
                if remaining == 0 {
                    api.stop();
                    return;
                }
                let key = zipf.sample();
                let coin = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                api.send(
                    &queue,
                    Request {
                        arrival: api.fire_time(),
                        key,
                        is_get: coin < get_fraction,
                        value: sent,
                    },
                );
                sent += 1;
                remaining -= 1;
                if remaining == 0 {
                    api.stop();
                    return;
                }
                // Seeded-exponential inter-arrival gap (Poisson arrivals).
                let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let gap_ns = (-(1.0 - u).ln() * mean_gap_ns).max(1.0);
                api.reschedule_in(Duration::from_ns_f64(gap_ns));
            });
        }
        Ok(KvService {
            config,
            quartz,
            queues,
            gate_ps,
            result: Arc::new(Mutex::new(None)),
        })
    }

    /// The slot [`KvService::into_root`]'s closure deposits the result
    /// into when the run completes.
    pub fn result_slot(&self) -> Arc<Mutex<Option<ServiceResult>>> {
        Arc::clone(&self.result)
    }

    /// Consumes the handle into the root closure for
    /// [`Engine::run`](quartz_threadsim::Engine::run): create + preload
    /// the store, open the arrival gate, spawn the M workers, join
    /// them, and merge their tallies.
    pub fn into_root(self) -> impl FnOnce(&mut ThreadCtx) + Send + 'static {
        let KvService {
            config,
            quartz,
            queues,
            gate_ps,
            result,
        } = self;
        move |ctx: &mut ThreadCtx| {
            let store = Arc::new(KvStore::create(ctx, KvConfig::new(NodeId(0))));
            preload(ctx, &store, quartz.as_deref(), config.preload_keys);
            // Open the gate: sources begin injecting at their next poll.
            gate_ps.store(ctx.now().as_ps(), Ordering::Release);
            let t_open = ctx.now();
            let tallies: Arc<Mutex<(LatencyHist, u64, u64, SimTime)>> =
                Arc::new(Mutex::new((LatencyHist::new(), 0, 0, SimTime::ZERO)));
            let mut kids = Vec::with_capacity(config.workers);
            for queue in queues {
                let store = Arc::clone(&store);
                let quartz = quartz.clone();
                let tallies = Arc::clone(&tallies);
                kids.push(ctx.spawn(move |c| {
                    let mut local = LatencyHist::new();
                    let (mut done, mut wakeups) = (0u64, 0u64);
                    let mut last = SimTime::ZERO;
                    let mut batch = Vec::with_capacity(config.batch);
                    while let Some(first) = c.chan_recv(&queue) {
                        wakeups += 1;
                        batch.push(first);
                        while batch.len() < config.batch {
                            match c.chan_try_recv(&queue) {
                                Ok(r) => batch.push(r),
                                Err(_) => break,
                            }
                        }
                        // Per-wake-up dispatch cost, amortized over the
                        // drained batch.
                        c.compute_ns(config.dispatch_ns);
                        for req in batch.drain(..) {
                            if req.is_get {
                                c.compute_ns(config.get_compute_ns);
                                store.get(c, req.key);
                            } else {
                                c.compute_ns(config.put_compute_ns);
                                store.put(c, quartz.as_deref(), req.key, req.value);
                            }
                            local.record(c.now().saturating_duration_since(req.arrival));
                            done += 1;
                        }
                        last = c.now();
                    }
                    let mut tl = tallies.lock();
                    tl.0.merge(&local);
                    tl.1 += done;
                    tl.2 += wakeups;
                    tl.3 = tl.3.max(last);
                }));
            }
            for k in kids {
                ctx.join(k);
            }
            let (latency, completed, wakeups, end) = {
                let mut tl = tallies.lock();
                (std::mem::take(&mut tl.0), tl.1, tl.2, tl.3)
            };
            *result.lock() = Some(ServiceResult {
                completed,
                elapsed: end.saturating_duration_since(t_open),
                latency,
                wakeups,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use quartz_memsim::{MemSimConfig, MemorySystem};
    use quartz_platform::{Architecture, Platform, PlatformConfig};

    fn run(config: ServiceConfig) -> ServiceResult {
        let platform =
            Platform::new(PlatformConfig::new(Architecture::SandyBridge).with_perfect_counters());
        let mem = Arc::new(MemorySystem::new(
            platform,
            MemSimConfig::default().without_jitter(),
        ));
        let engine = Engine::new(mem);
        let svc = KvService::try_install(&engine, None, config).expect("valid config");
        let slot = svc.result_slot();
        engine.run(svc.into_root());
        let r = slot.lock().take().expect("service deposited a result");
        r
    }

    fn quick() -> ServiceConfig {
        ServiceConfig {
            connections: 4,
            workers: 2,
            requests: 4_000,
            offered_rps: 2.0e6,
            preload_keys: 2_000,
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn completes_every_request_exactly_once() {
        let r = run(quick());
        assert_eq!(r.completed, 4_000);
        assert_eq!(r.latency.count(), 4_000);
        assert!(r.wakeups > 0 && r.wakeups <= r.completed);
        assert!(r.achieved_rps() > 0.0);
        assert!(r.latency.p50() <= r.latency.p99());
        assert!(r.latency.p99() <= r.latency.p999());
    }

    #[test]
    fn run_is_deterministic() {
        let a = run(quick());
        let b = run(quick());
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.wakeups, b.wakeups);
    }

    #[test]
    fn overload_inflates_tail_latency() {
        // Same work at 20x the offered load: queues build up, and the
        // open-loop arrival stamps charge the queueing to the tail.
        let light = run(ServiceConfig {
            offered_rps: 0.5e6,
            ..quick()
        });
        let heavy = run(ServiceConfig {
            offered_rps: 10.0e6,
            ..quick()
        });
        assert!(
            heavy.latency.p999() > 2 * light.latency.p999(),
            "overload must show up in the tail: light p999 {} heavy p999 {}",
            light.latency.p999(),
            heavy.latency.p999()
        );
    }

    #[test]
    fn invalid_configs_are_typed_errors() {
        for (cfg, what) in [
            (
                ServiceConfig {
                    connections: 0,
                    ..ServiceConfig::default()
                },
                "service connections",
            ),
            (
                ServiceConfig {
                    workers: 0,
                    ..ServiceConfig::default()
                },
                "service workers",
            ),
            (
                ServiceConfig {
                    batch: 0,
                    ..ServiceConfig::default()
                },
                "service batch size",
            ),
        ] {
            match validate_service_config(&cfg) {
                Err(WorkloadError::ZeroWorkers { what: w }) => assert_eq!(w, what),
                other => panic!("{what}: expected ZeroWorkers, got {other:?}"),
            }
        }
        assert!(matches!(
            validate_service_config(&ServiceConfig {
                requests: 0,
                ..ServiceConfig::default()
            }),
            Err(WorkloadError::EmptyDomain { .. })
        ));
        assert!(matches!(
            validate_service_config(&ServiceConfig {
                offered_rps: 0.0,
                ..ServiceConfig::default()
            }),
            Err(WorkloadError::OutOfRange { .. })
        ));
    }
}
