//! A recoverable undo-log key-value table for crash-consistency
//! checking (the `quartz-crash` subsystem's reference workload).
//!
//! Layout in persistent memory (all metadata words on their own 64 B
//! lines; table slots packed 8 per line):
//!
//! ```text
//! base +   0   head  — sequence number of the op whose undo record is
//!                      valid (written & flushed *before* the data)
//! base +  64   done  — sequence number of the last completed op
//! base + 128   log   — LOG_CAP undo records, one line each:
//!                      [slot, old value, seq, checksum]
//! base + 128 + LOG_CAP*64   table — `slots` u64 values
//! ```
//!
//! The correct write protocol for op `seq` on key `k`:
//!
//! 1. write the undo record, `pflush_opt` + `pcommit` it;
//! 2. `head = seq`, `pflush` — the record is now authoritative;
//! 3. `table[k] = v`, `pflush`;
//! 4. `done = seq`, `pflush`, then *claim* `(table[k], done)` durable.
//!
//! Recovery inspects only the durable image: `head == done` means the
//! table is consistent as of `done` ops; `head == done + 1` means op
//! `head` was in flight — validate its undo record (seq + checksum)
//! and roll the slot back. Anything else is corruption.
//!
//! Two seeded-bug variants demonstrate the checker catching real
//! ordering bugs: [`UndoVariant::MissingDataFlush`] skips step 3's
//! flush (data may never reach NVM although `done` says it did);
//! [`UndoVariant::MisorderedCommit`] flushes the commit record before
//! the data (the §6 ordering mistake `pcommit` exists to prevent).

use std::sync::Arc;

use parking_lot::Mutex;
use quartz::{Quartz, QuartzConfig, QuartzError};
use quartz_crash::{CrashOutcome, CrashPlan, CrashRun, DurableImage, Pmem};
use quartz_memsim::{Addr, MemorySystem};
use quartz_threadsim::ThreadCtx;

/// Undo records kept in the circular log.
pub const LOG_CAP: u64 = 4;

/// Checksum perturbation so an all-zero record never validates.
const MAGIC: u64 = 0x51AC_717E_0DD5_EED5;

/// Which write-protocol variant an op uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UndoVariant {
    /// The full protocol above.
    Correct,
    /// Seeded bug: step 3 writes the data but never flushes it.
    MissingDataFlush,
    /// Seeded bug: the commit record is flushed *before* the data.
    MisorderedCommit,
}

impl UndoVariant {
    /// Short name for reports.
    pub fn label(self) -> &'static str {
        match self {
            UndoVariant::Correct => "correct",
            UndoVariant::MissingDataFlush => "missing_flush",
            UndoVariant::MisorderedCommit => "misordered_commit",
        }
    }
}

/// Workload parameters.
#[derive(Clone, Copy, Debug)]
pub struct UndoLogSpec {
    /// Table slots (keys are `seq % slots`).
    pub slots: u64,
    /// Total operations.
    pub ops: u64,
    /// Seed for values and the crash-point grid.
    pub seed: u64,
    /// Protocol variant.
    pub variant: UndoVariant,
    /// Worker threads (> 1 exercises lock-hand-off crash points).
    pub threads: usize,
}

/// The persistent layout handle (plain addresses; freely copyable).
#[derive(Clone, Copy, Debug)]
pub struct UndoLogKv {
    base: Addr,
    slots: u64,
}

/// The key op `seq` (1-based) writes.
pub fn key_of(seq: u64, slots: u64) -> u64 {
    (seq - 1) % slots
}

/// The value op `seq` writes (deterministic, never zero).
pub fn value_of(seq: u64, seed: u64) -> u64 {
    splitmix(seed ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15)) | 1
}

/// The table contents after the first `count` ops.
pub fn golden_prefix(slots: u64, count: u64, seed: u64) -> Vec<u64> {
    let mut v = vec![0u64; slots as usize];
    for seq in 1..=count {
        v[key_of(seq, slots) as usize] = value_of(seq, seed);
    }
    v
}

impl UndoLogKv {
    /// Allocates the persistent layout (zeroed: the simulator models
    /// fresh allocations as zero, as does [`DurableImage`]).
    ///
    /// # Errors
    ///
    /// Propagates `pmalloc` failure.
    pub fn create(
        ctx: &mut ThreadCtx,
        q: &Arc<Quartz>,
        slots: u64,
    ) -> Result<UndoLogKv, QuartzError> {
        let table_lines = slots.div_ceil(8);
        let bytes = (2 + LOG_CAP + table_lines) * 64;
        let base = q.pmalloc(ctx, bytes)?;
        Ok(UndoLogKv { base, slots })
    }

    /// Table capacity.
    pub fn slots(&self) -> u64 {
        self.slots
    }

    fn head_addr(&self) -> Addr {
        self.base
    }
    fn done_addr(&self) -> Addr {
        self.base.offset_by(64)
    }
    fn rec_addr(&self, i: u64) -> Addr {
        self.base.offset_by(128 + (i % LOG_CAP) * 64)
    }
    fn slot_addr(&self, k: u64) -> Addr {
        self.base.offset_by(128 + LOG_CAP * 64 + k * 8)
    }

    /// Applies op `seq` (1-based; the caller serializes sequence
    /// numbers) under the given protocol variant.
    pub fn put(
        &self,
        ctx: &mut ThreadCtx,
        pm: &Pmem,
        variant: UndoVariant,
        seq: u64,
        k: u64,
        v: u64,
    ) {
        let slot = self.slot_addr(k);
        let old = pm.read_u64(ctx, slot);
        // 1. Undo record, made durable via the opt/commit pair (this is
        // what puts crash candidates *inside* the §6 window).
        let rec = self.rec_addr(seq - 1);
        pm.write_u64(ctx, rec, k);
        pm.write_u64(ctx, rec.offset_by(8), old);
        pm.write_u64(ctx, rec.offset_by(16), seq);
        pm.write_u64(ctx, rec.offset_by(24), k ^ old ^ seq ^ MAGIC);
        pm.flush_opt(ctx, rec);
        pm.commit(ctx);
        // 2. Record is authoritative from here.
        pm.write_u64(ctx, self.head_addr(), seq);
        pm.flush(ctx, self.head_addr());
        match variant {
            UndoVariant::Correct => {
                // 3. Data.
                pm.write_u64(ctx, slot, v);
                pm.flush(ctx, slot);
                // 4. Commit.
                pm.write_u64(ctx, self.done_addr(), seq);
                pm.flush(ctx, self.done_addr());
                pm.claim_persisted(ctx, &[(slot, v), (self.done_addr(), seq)]);
            }
            UndoVariant::MissingDataFlush => {
                pm.write_u64(ctx, slot, v);
                // BUG: the data line is never flushed.
                pm.write_u64(ctx, self.done_addr(), seq);
                pm.flush(ctx, self.done_addr());
                pm.claim_persisted(ctx, &[(slot, v), (self.done_addr(), seq)]);
            }
            UndoVariant::MisorderedCommit => {
                pm.write_u64(ctx, slot, v);
                pm.write_u64(ctx, self.done_addr(), seq);
                // BUG: the commit record becomes durable before the
                // data it commits.
                pm.flush(ctx, self.done_addr());
                pm.flush(ctx, slot);
                pm.claim_persisted(ctx, &[(slot, v), (self.done_addr(), seq)]);
            }
        }
    }

    /// Reconstructs the table from a post-crash durable image.
    ///
    /// Returns `(completed ops, table values)`.
    ///
    /// # Errors
    ///
    /// Reports unrecoverable states: a torn/invalid undo record when
    /// one is needed, or inconsistent `head`/`done` counters.
    pub fn recover(&self, image: &DurableImage) -> Result<(u64, Vec<u64>), String> {
        let head = image.read_u64(self.head_addr());
        let done = image.read_u64(self.done_addr());
        let mut values: Vec<u64> = (0..self.slots)
            .map(|k| image.read_u64(self.slot_addr(k)))
            .collect();
        if head == done {
            return Ok((done, values));
        }
        if head == done + 1 {
            // Op `head` was in flight: roll it back via its record.
            let rec = self.rec_addr(head - 1);
            let rk = image.read_u64(rec);
            let rold = image.read_u64(rec.offset_by(8));
            let rseq = image.read_u64(rec.offset_by(16));
            let rsum = image.read_u64(rec.offset_by(24));
            if rseq != head || rsum != rk ^ rold ^ rseq ^ MAGIC {
                return Err(format!(
                    "undo record for op {head} is torn or stale (seq {rseq})"
                ));
            }
            if rk >= self.slots {
                return Err(format!("undo record slot {rk} out of range"));
            }
            values[rk as usize] = rold;
            return Ok((done, values));
        }
        Err(format!("inconsistent counters: head {head}, done {done}"))
    }
}

/// Runs the workload once under crash tracking and returns the
/// checkable run plus the layout handle.
///
/// # Errors
///
/// Propagates emulator construction failures.
pub fn run_undo_log(
    spec: &UndoLogSpec,
    mem: Arc<MemorySystem>,
    config: QuartzConfig,
    random_points: usize,
) -> Result<(CrashRun, UndoLogKv), QuartzError> {
    let spec = *spec;
    CrashPlan::new(spec.seed)
        .with_random_points(random_points)
        .run(mem, config, move |ctx, q, pm| {
            let kv = UndoLogKv::create(ctx, q, spec.slots).expect("pmalloc");
            if spec.threads <= 1 {
                for seq in 1..=spec.ops {
                    kv.put(
                        ctx,
                        pm,
                        spec.variant,
                        seq,
                        key_of(seq, spec.slots),
                        value_of(seq, spec.seed),
                    );
                }
            } else {
                // Ops are serialized by a *simulated* mutex so the
                // releases are genuine lock hand-offs (each one a
                // crash candidate); the sequence counter is host-side
                // state only ever touched while holding that mutex.
                let m = ctx.mutex_new();
                let next: Arc<Mutex<u64>> = Arc::new(Mutex::new(0));
                let mut workers = Vec::new();
                for _ in 0..spec.threads {
                    let pm = pm.clone();
                    let next = Arc::clone(&next);
                    workers.push(ctx.spawn(move |tctx| loop {
                        tctx.mutex_lock(m);
                        let seq = {
                            let mut n = next.lock();
                            *n += 1;
                            *n
                        };
                        if seq > spec.ops {
                            tctx.mutex_unlock(m);
                            break;
                        }
                        kv.put(
                            tctx,
                            &pm,
                            spec.variant,
                            seq,
                            key_of(seq, spec.slots),
                            value_of(seq, spec.seed),
                        );
                        tctx.mutex_unlock(m);
                    }));
                }
                for w in workers {
                    ctx.join(w);
                }
            }
            kv
        })
}

/// Runs recovery + golden-state verification at every crash point.
pub fn check_undo_log(run: &CrashRun, kv: UndoLogKv, spec: &UndoLogSpec) -> Vec<CrashOutcome> {
    let seed = spec.seed;
    run.check(move |image| {
        let (count, values) = kv.recover(image)?;
        let golden = golden_prefix(kv.slots(), count, seed);
        if values == golden {
            Ok(())
        } else {
            Err(format!(
                "recovered table diverges from the {count}-op golden state"
            ))
        }
    })
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quartz::NvmTarget;
    use quartz_memsim::MemSimConfig;
    use quartz_platform::{Architecture, Platform, PlatformConfig};

    fn machine() -> Arc<MemorySystem> {
        let p = Platform::new(PlatformConfig::new(Architecture::IvyBridge).with_perfect_counters());
        Arc::new(MemorySystem::new(
            p,
            MemSimConfig::default().without_jitter(),
        ))
    }

    fn cfg() -> QuartzConfig {
        QuartzConfig::new(NvmTarget::new(300.0).with_write_delay_ns(450.0))
    }

    fn spec(variant: UndoVariant, threads: usize) -> UndoLogSpec {
        UndoLogSpec {
            slots: 8,
            ops: 12,
            seed: 99,
            variant,
            threads,
        }
    }

    #[test]
    fn correct_variant_recovers_at_every_crash_point() {
        let s = spec(UndoVariant::Correct, 1);
        let (run, kv) = run_undo_log(&s, machine(), cfg(), 24).unwrap();
        let outcomes = check_undo_log(&run, kv, &s);
        assert!(!outcomes.is_empty());
        for o in &outcomes {
            assert!(
                o.recovered(),
                "crash at {:?} ({}) must recover: {:?} claims {:?}",
                o.at,
                o.label,
                o.verdict,
                o.violated_claims
            );
        }
        // The full run is recoverable at its end state with all ops.
        let (count, values) = kv
            .recover(&run.trace().image_at(run.trace().end()))
            .unwrap();
        assert_eq!(count, s.ops);
        assert_eq!(values, golden_prefix(s.slots, s.ops, s.seed));
    }

    #[test]
    fn missing_flush_is_detected() {
        let s = spec(UndoVariant::MissingDataFlush, 1);
        let (run, kv) = run_undo_log(&s, machine(), cfg(), 24).unwrap();
        let outcomes = check_undo_log(&run, kv, &s);
        let failures: Vec<_> = outcomes.iter().filter(|o| !o.recovered()).collect();
        assert!(!failures.is_empty(), "the missing flush must be caught");
        // The oracle specifically flags the lied-about data word.
        assert!(outcomes.iter().any(|o| !o.violated_claims.is_empty()));
    }

    #[test]
    fn misordered_commit_is_detected() {
        let s = spec(UndoVariant::MisorderedCommit, 1);
        let (run, kv) = run_undo_log(&s, machine(), cfg(), 24).unwrap();
        let outcomes = check_undo_log(&run, kv, &s);
        assert!(
            outcomes.iter().any(|o| !o.recovered()),
            "commit-before-data must be caught at some crash point"
        );
    }

    #[test]
    fn multithreaded_correct_variant_recovers_everywhere() {
        let s = spec(UndoVariant::Correct, 2);
        let (run, kv) = run_undo_log(&s, machine(), cfg(), 16).unwrap();
        assert!(
            run.points().iter().any(|(l, _)| l == "lock_handoff"),
            "MT run must produce lock-hand-off crash points"
        );
        for o in check_undo_log(&run, kv, &s) {
            assert!(o.recovered(), "{} at {:?}: {:?}", o.label, o.at, o.verdict);
        }
    }

    #[test]
    fn golden_prefix_replays_ops_in_sequence_order() {
        let g = golden_prefix(4, 6, 1);
        for seq in 1..=6u64 {
            if (seq..=6).all(|later| key_of(later, 4) != key_of(seq, 4) || later == seq) {
                assert_eq!(g[key_of(seq, 4) as usize], value_of(seq, 1));
            }
        }
        assert_ne!(value_of(1, 1), value_of(2, 1));
        assert_eq!(value_of(3, 7) % 2, 1, "values are never zero");
    }
}
