//! Benchmarks and applications for the Quartz reproduction.
//!
//! Microbenchmarks from the paper's evaluation (§4):
//!
//! * [`memlat`] — the memory-latency-bound pointer-chasing benchmark with
//!   a configurable degree of memory access parallelism (§4.4); also the
//!   latency *measurement* tool used throughout the evaluation,
//! * [`stream`] — the STREAM *copy* kernel used to validate bandwidth
//!   throttling (Fig. 8),
//! * [`multithreaded`] — N threads × K critical sections with
//!   configurable compute inside and outside the critical section
//!   (§4.5, Fig. 13),
//! * [`multilat`] — the two-array DRAM+NVM pointer chase with repeating
//!   access patterns (§4.6, Fig. 14).
//!
//! Applications for the case study (§4.7):
//!
//! * [`kvstore`] — a concurrent lock-striped B+-tree key-value store
//!   standing in for MassTree (Fig. 15/16),
//! * [`pagerank`] — power-iteration PageRank over a CSR graph standing in
//!   for the Yahoo linear-system solver (Fig. 16),
//! * [`bfs`] — a Graph500-style level-synchronous BFS (the paper's §7
//!   mentions Graph500 validation on HP's hardware emulator).
//!
//! Extensions beyond the paper's evaluation:
//!
//! * [`pagerank_mt`] — barrier-synchronized parallel PageRank exercising
//!   the OpenMP-style primitives the paper's §7 plans to support,
//! * [`pipeline`] — a condvar producer/consumer exercising notify-path
//!   delay propagation,
//! * [`kvstore::undo_log`] — a recoverable undo-log KV table (correct
//!   protocol plus two seeded ordering bugs) serving as the reference
//!   workload for the `quartz-crash` consistency checker.
//!
//! Every workload issues its memory traffic through a
//! [`quartz_threadsim::ThreadCtx`], so the same binary runs unmodified in
//! the paper's Conf_1 (local memory + Quartz) and Conf_2 (physically
//! remote memory) validation configurations.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bfs;
pub mod chain;
pub mod error;
pub mod graph;
pub mod kvstore;
pub mod memlat;
pub mod multilat;
pub mod multithreaded;
pub mod pagerank;
pub mod pagerank_mt;
pub mod pipeline;
pub mod stream;
pub mod zipf;

pub use error::WorkloadError;
pub use memlat::{run_memlat, MemLatConfig, MemLatResult};
pub use multilat::{run_multilat, MultiLatConfig, MultiLatResult};
pub use multithreaded::{run_multithreaded, MultiThreadedConfig, MultiThreadedResult};
pub use stream::{run_stream_copy, StreamConfig, StreamResult};
