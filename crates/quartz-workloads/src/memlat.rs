//! **MemLat** — the memory-latency-bound pointer-chasing benchmark
//! (paper §4.4).
//!
//! MemLat is latency-sensitive because "the next element to be accessed
//! is determined only after the current access completes". With multiple
//! independent chains it issues that many parallel memory requests per
//! iteration, which is how the paper validates the model's handling of
//! memory-level parallelism (Fig. 11). With one chain it doubles as a
//! memory-latency measurement tool (Fig. 12; "Memory Latency Checker
//! exploits a similar idea").

use quartz_memsim::Addr;
use quartz_platform::time::Duration;
use quartz_platform::NodeId;
use quartz_threadsim::ThreadCtx;

use crate::chain::Chain;

/// MemLat parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemLatConfig {
    /// Number of independent chains (the degree of memory access
    /// parallelism; the paper sweeps 1, 2, 3, 4, 5, 8).
    pub chains: usize,
    /// Lines per chain. The total array size should be much larger than
    /// the LLC so every access misses.
    pub lines_per_chain: u64,
    /// Chase iterations (each iteration accesses the current element of
    /// *every* chain).
    pub iterations: u64,
    /// NUMA node the chains live on.
    pub node: NodeId,
    /// Shuffle seed.
    pub seed: u64,
}

impl MemLatConfig {
    /// A single-chain latency-measurement configuration sized to defeat
    /// an LLC of `l3_bytes`.
    pub fn latency_probe(node: NodeId, l3_bytes: u64, iterations: u64) -> Self {
        MemLatConfig {
            chains: 1,
            lines_per_chain: 8 * l3_bytes / 64,
            iterations,
            node,
            seed: 0x4D4C,
        }
    }
}

/// MemLat output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemLatResult {
    /// Total virtual time for the measured iterations.
    pub elapsed: Duration,
    /// Loads issued during measurement.
    pub accesses: u64,
    /// Iterations executed.
    pub iterations: u64,
}

impl MemLatResult {
    /// Average latency per *iteration* in nanoseconds — with one chain
    /// this is the measured memory latency `Lat_meas` of Fig. 12; with
    /// `k` chains, perfectly overlapped requests keep this near one
    /// latency even though `k` loads are in flight.
    pub fn latency_per_iteration_ns(&self) -> f64 {
        self.elapsed.as_ns_f64() / self.iterations as f64
    }

    /// Average time per individual access in nanoseconds.
    pub fn latency_per_access_ns(&self) -> f64 {
        self.elapsed.as_ns_f64() / self.accesses as f64
    }
}

/// Runs MemLat on the calling simulated thread.
///
/// # Panics
///
/// Panics if `chains` is zero or allocation fails.
pub fn run_memlat(ctx: &mut ThreadCtx, config: &MemLatConfig) -> MemLatResult {
    assert!(config.chains >= 1, "need at least one chain");
    let mut chains: Vec<Chain> = (0..config.chains)
        .map(|k| {
            Chain::build(
                ctx,
                config.node,
                config.lines_per_chain,
                config.seed.wrapping_add(k as u64 * 0x9E37),
            )
        })
        .collect();

    // Warm-up: touch each chain a little so TLB entries and the first
    // prefetch-stream allocations fall outside the measurement.
    for chain in &mut chains {
        for _ in 0..32 {
            chain.step(ctx);
        }
    }

    let t0 = ctx.now();
    let mut batch: Vec<Addr> = Vec::with_capacity(config.chains);
    if config.chains == 1 {
        let chain = &mut chains[0];
        for _ in 0..config.iterations {
            chain.step(ctx);
        }
    } else {
        for _ in 0..config.iterations {
            batch.clear();
            for chain in &chains {
                batch.push(chain.current_addr());
            }
            ctx.load_batch(&batch);
            for chain in &mut chains {
                chain.advance_cursor();
            }
        }
    }
    let elapsed = ctx.now().saturating_duration_since(t0);
    for chain in chains {
        chain.free(ctx);
    }
    MemLatResult {
        elapsed,
        accesses: config.iterations * config.chains as u64,
        iterations: config.iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use quartz_memsim::{MemSimConfig, MemorySystem};
    use quartz_platform::{Architecture, Platform, PlatformConfig};
    use quartz_threadsim::Engine;

    fn engine(arch: Architecture) -> Engine {
        let platform = Platform::new(PlatformConfig::new(arch).with_perfect_counters());
        Engine::new(Arc::new(MemorySystem::new(
            platform,
            MemSimConfig::default().without_jitter(),
        )))
    }

    #[test]
    fn single_chain_measures_local_latency() {
        let out = Arc::new(parking_lot::Mutex::new(0.0));
        let o = Arc::clone(&out);
        engine(Architecture::IvyBridge).run(move |ctx| {
            let l3 = ctx.mem().config().l3.size_bytes;
            let cfg = MemLatConfig::latency_probe(NodeId(0), l3, 20_000);
            *o.lock() = run_memlat(ctx, &cfg).latency_per_iteration_ns();
        });
        let lat = *out.lock();
        assert!((lat - 87.0).abs() < 3.0, "measured local latency {lat}");
    }

    #[test]
    fn single_chain_measures_remote_latency() {
        let out = Arc::new(parking_lot::Mutex::new(0.0));
        let o = Arc::clone(&out);
        engine(Architecture::Haswell).run(move |ctx| {
            let l3 = ctx.mem().config().l3.size_bytes;
            let cfg = MemLatConfig::latency_probe(NodeId(1), l3, 20_000);
            *o.lock() = run_memlat(ctx, &cfg).latency_per_iteration_ns();
        });
        let lat = *out.lock();
        assert!((lat - 175.0).abs() < 4.0, "measured remote latency {lat}");
    }

    #[test]
    fn parallel_chains_overlap() {
        // 4 chains: 4 loads per iteration but ~1 latency of stall.
        let out = Arc::new(parking_lot::Mutex::new((0.0, 0.0)));
        let o = Arc::clone(&out);
        engine(Architecture::IvyBridge).run(move |ctx| {
            let l3 = ctx.mem().config().l3.size_bytes;
            let mut cfg = MemLatConfig::latency_probe(NodeId(0), l3, 10_000);
            let one = run_memlat(ctx, &cfg);
            cfg.chains = 4;
            cfg.lines_per_chain /= 4;
            let four = run_memlat(ctx, &cfg);
            *o.lock() = (
                one.latency_per_iteration_ns(),
                four.latency_per_iteration_ns(),
            );
        });
        let (one, four) = *out.lock();
        // An iteration with 4 parallel chains costs well under 4x a
        // single-chain iteration (MLP), though queueing adds a little.
        assert!(four < 2.0 * one, "one {one}, four {four}");
        assert!(four > 0.9 * one);
    }

    #[test]
    fn result_accounting() {
        let out = Arc::new(parking_lot::Mutex::new(None));
        let o = Arc::clone(&out);
        engine(Architecture::IvyBridge).run(move |ctx| {
            let cfg = MemLatConfig {
                chains: 2,
                lines_per_chain: 4096,
                iterations: 100,
                node: NodeId(0),
                seed: 1,
            };
            *o.lock() = Some(run_memlat(ctx, &cfg));
        });
        let r = out.lock().unwrap();
        assert_eq!(r.accesses, 200);
        assert_eq!(r.iterations, 100);
        assert!(r.elapsed > Duration::ZERO);
    }
}
