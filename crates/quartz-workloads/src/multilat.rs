//! **MultiLat** — the two-array DRAM+NVM pointer chase (paper §4.6,
//! Fig. 14).
//!
//! A tailored extension of MemLat for validating the two-memory-type
//! emulation: one chain lives in DRAM, the other in (virtual) NVM, and a
//! repeating access pattern interleaves `dram_burst` DRAM accesses with
//! `nvm_burst` NVM accesses. If the stall-splitting heuristic is correct,
//! the completion time depends only on the element counts — not on the
//! pattern: `CT = Num_DRAM × DRAM_lat + Num_NVM × NVM_lat`.

use quartz_platform::time::Duration;
use quartz_platform::NodeId;
use quartz_threadsim::ThreadCtx;

use crate::chain::Chain;

/// MultiLat parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MultiLatConfig {
    /// Elements in the DRAM-resident chain (`Num_DRAM`).
    pub dram_elements: u64,
    /// Elements in the NVM-resident chain (`Num_NVM`).
    pub nvm_elements: u64,
    /// Consecutive DRAM accesses per pattern repetition.
    pub dram_burst: u64,
    /// Consecutive NVM accesses per pattern repetition.
    pub nvm_burst: u64,
    /// Node hosting the DRAM chain.
    pub dram_node: NodeId,
    /// Node hosting the virtual-NVM chain.
    pub nvm_node: NodeId,
    /// Shuffle seed.
    pub seed: u64,
}

impl MultiLatConfig {
    /// The paper's four patterns all keep a 2:1 DRAM:NVM burst ratio at
    /// different granularities; this picks the pattern by its DRAM burst
    /// length (200,000 / 20,000 / 2,000 / 200).
    pub fn pattern(dram_elements: u64, nvm_elements: u64, dram_burst: u64) -> Self {
        MultiLatConfig {
            dram_elements,
            nvm_elements,
            dram_burst,
            nvm_burst: dram_burst / 2,
            dram_node: NodeId(0),
            nvm_node: NodeId(1),
            seed: 0x4D4C_4154,
        }
    }
}

/// MultiLat output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MultiLatResult {
    /// Measured completion time.
    pub elapsed: Duration,
    /// DRAM accesses performed.
    pub dram_accesses: u64,
    /// NVM accesses performed.
    pub nvm_accesses: u64,
}

impl MultiLatResult {
    /// The expected completion time `Num_DRAM × DRAM_lat + Num_NVM ×
    /// NVM_lat` (§4.6) for given average latencies, in nanoseconds.
    pub fn expected_ns(&self, dram_lat_ns: f64, nvm_lat_ns: f64) -> f64 {
        self.dram_accesses as f64 * dram_lat_ns + self.nvm_accesses as f64 * nvm_lat_ns
    }

    /// Relative error of the measured time against the expectation.
    pub fn error_vs_expected(&self, dram_lat_ns: f64, nvm_lat_ns: f64) -> f64 {
        let expect = self.expected_ns(dram_lat_ns, nvm_lat_ns);
        (self.elapsed.as_ns_f64() - expect).abs() / expect
    }
}

/// Runs MultiLat: chases both chains, visiting `dram_elements` +
/// `nvm_elements` elements in total with the configured burst pattern.
///
/// # Panics
///
/// Panics if any burst length is zero or allocation fails.
pub fn run_multilat(ctx: &mut ThreadCtx, config: &MultiLatConfig) -> MultiLatResult {
    assert!(
        config.dram_burst > 0 && config.nvm_burst > 0,
        "bursts must be positive"
    );
    // The chains wrap around if the element counts exceed the chain
    // length; size them to one visit per element when possible.
    let dram_lines = config.dram_elements.clamp(2, 1 << 22);
    let nvm_lines = config.nvm_elements.clamp(2, 1 << 22);
    let mut dram = Chain::build(ctx, config.dram_node, dram_lines, config.seed);
    let mut nvm = Chain::build(ctx, config.nvm_node, nvm_lines, config.seed ^ 0xFFFF);

    // Warm the TLBs.
    for _ in 0..32 {
        dram.step(ctx);
        nvm.step(ctx);
    }

    let mut dram_left = config.dram_elements;
    let mut nvm_left = config.nvm_elements;
    let t0 = ctx.now();
    while dram_left > 0 || nvm_left > 0 {
        let d = config.dram_burst.min(dram_left);
        for _ in 0..d {
            dram.step(ctx);
        }
        dram_left -= d;
        let n = config.nvm_burst.min(nvm_left);
        for _ in 0..n {
            nvm.step(ctx);
        }
        nvm_left -= n;
    }
    let elapsed = ctx.now().saturating_duration_since(t0);
    dram.free(ctx);
    nvm.free(ctx);
    MultiLatResult {
        elapsed,
        dram_accesses: config.dram_elements,
        nvm_accesses: config.nvm_elements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use quartz_memsim::{MemSimConfig, MemorySystem};
    use quartz_platform::{Architecture, Platform, PlatformConfig};
    use quartz_threadsim::Engine;

    fn run(config: MultiLatConfig) -> MultiLatResult {
        let platform =
            Platform::new(PlatformConfig::new(Architecture::Haswell).with_perfect_counters());
        let mem = Arc::new(MemorySystem::new(
            platform,
            MemSimConfig::default().without_jitter(),
        ));
        let engine = Engine::new(mem);
        let out = Arc::new(parking_lot::Mutex::new(None));
        let o = Arc::clone(&out);
        engine.run(move |ctx| {
            *o.lock() = Some(run_multilat(ctx, &config));
        });
        let r = out.lock().take().unwrap();
        r
    }

    #[test]
    fn completion_time_matches_latency_sum_without_emulation() {
        // Without an emulator, "NVM" is just remote DRAM at 175 ns.
        let r = run(MultiLatConfig {
            dram_elements: 20_000,
            nvm_elements: 10_000,
            ..MultiLatConfig::pattern(20_000, 10_000, 2_000)
        });
        let err = r.error_vs_expected(120.0, 175.0);
        assert!(err < 0.02, "error {err}");
    }

    #[test]
    fn pattern_granularity_does_not_change_completion_time() {
        let mut times = Vec::new();
        for burst in [200u64, 2_000, 20_000] {
            let r = run(MultiLatConfig::pattern(20_000, 10_000, burst));
            times.push(r.elapsed.as_ns_f64());
        }
        let max = times.iter().cloned().fold(f64::MIN, f64::max);
        let min = times.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            (max - min) / min < 0.02,
            "pattern-independent completion: {times:?}"
        );
    }

    #[test]
    fn accounting() {
        let r = run(MultiLatConfig::pattern(5_000, 2_500, 200));
        assert_eq!(r.dram_accesses, 5_000);
        assert_eq!(r.nvm_accesses, 2_500);
    }
}
