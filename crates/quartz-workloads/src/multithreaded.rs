//! The **Multi-Threaded** benchmark (paper §4.5, Fig. 13).
//!
//! N threads each execute K critical sections protected by one shared
//! lock; compute inside the critical section is `cs_dur` pointer-chasing
//! iterations of MemLat, compute outside is `out_dur` iterations. The
//! "cs only" extreme sets `out_dur = 0`.

use quartz_platform::time::Duration;
use quartz_platform::NodeId;
use quartz_threadsim::ThreadCtx;

use crate::chain::Chain;

/// Multi-Threaded benchmark parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MultiThreadedConfig {
    /// `N` — worker threads.
    pub threads: usize,
    /// `K` — critical sections per thread.
    pub critical_sections: u64,
    /// Pointer-chasing iterations inside each critical section.
    pub cs_dur: u64,
    /// Pointer-chasing iterations outside (between) critical sections.
    pub out_dur: u64,
    /// Lines per thread-private chain.
    pub lines_per_chain: u64,
    /// Node the chains live on.
    pub node: NodeId,
    /// Shuffle seed.
    pub seed: u64,
}

impl MultiThreadedConfig {
    /// The paper's "cs only" scenario scaled by `threads`
    /// (`out_dur = 0`).
    pub fn cs_only(threads: usize, critical_sections: u64, node: NodeId) -> Self {
        MultiThreadedConfig {
            threads,
            critical_sections,
            cs_dur: 100,
            out_dur: 0,
            lines_per_chain: 1 << 17,
            node,
            seed: 0x3417,
        }
    }

    /// The paper's "with compute" scenario: equal work inside and outside
    /// the critical section.
    pub fn with_compute(threads: usize, critical_sections: u64, node: NodeId) -> Self {
        MultiThreadedConfig {
            out_dur: 100,
            ..Self::cs_only(threads, critical_sections, node)
        }
    }
}

/// Multi-Threaded output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MultiThreadedResult {
    /// Wall completion time (all threads joined).
    pub elapsed: Duration,
    /// Total chase iterations executed across threads.
    pub total_iterations: u64,
}

/// Runs the benchmark from the calling thread, which acts as the
/// coordinator.
///
/// # Panics
///
/// Panics if `threads` is zero or allocation fails.
pub fn run_multithreaded(ctx: &mut ThreadCtx, config: &MultiThreadedConfig) -> MultiThreadedResult {
    assert!(config.threads >= 1, "need at least one thread");
    let m = ctx.mutex_new();
    let t0 = ctx.now();
    let mut workers = Vec::with_capacity(config.threads);
    for k in 0..config.threads {
        let cfg = *config;
        workers.push(ctx.spawn(move |c| {
            let mut chain = Chain::build(
                c,
                cfg.node,
                cfg.lines_per_chain,
                cfg.seed.wrapping_add(k as u64 * 77),
            );
            for _ in 0..cfg.critical_sections {
                c.mutex_lock(m);
                for _ in 0..cfg.cs_dur {
                    chain.step(c);
                }
                c.mutex_unlock(m);
                for _ in 0..cfg.out_dur {
                    chain.step(c);
                }
            }
            chain.free(c);
        }));
    }
    for w in workers {
        ctx.join(w);
    }
    MultiThreadedResult {
        elapsed: ctx.now().saturating_duration_since(t0),
        total_iterations: config.threads as u64
            * config.critical_sections
            * (config.cs_dur + config.out_dur),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use quartz_memsim::{MemSimConfig, MemorySystem};
    use quartz_platform::{Architecture, Platform, PlatformConfig};
    use quartz_threadsim::Engine;

    fn run(config: MultiThreadedConfig) -> f64 {
        let platform =
            Platform::new(PlatformConfig::new(Architecture::IvyBridge).with_perfect_counters());
        let mem = Arc::new(MemorySystem::new(
            platform,
            MemSimConfig::default().without_jitter(),
        ));
        let engine = Engine::new(mem);
        let out = Arc::new(parking_lot::Mutex::new(0.0));
        let o = Arc::clone(&out);
        engine.run(move |ctx| {
            *o.lock() = run_multithreaded(ctx, &config).elapsed.as_ns_f64();
        });
        let v = *out.lock();
        v
    }

    #[test]
    fn cs_only_serializes_across_threads() {
        let one = run(MultiThreadedConfig {
            critical_sections: 50,
            ..MultiThreadedConfig::cs_only(1, 50, NodeId(0))
        });
        let four = run(MultiThreadedConfig {
            critical_sections: 50,
            ..MultiThreadedConfig::cs_only(4, 50, NodeId(0))
        });
        // All work is inside the lock: 4 threads take ~4x as long.
        let ratio = four / one;
        assert!((3.5..4.6).contains(&ratio), "serialization ratio {ratio}");
    }

    #[test]
    fn outside_compute_overlaps() {
        let cs_only = run(MultiThreadedConfig::cs_only(4, 50, NodeId(0)));
        let with_compute = run(MultiThreadedConfig::with_compute(4, 50, NodeId(0)));
        // Twice the total work, but the outside half overlaps across
        // threads: well under 2x the cs-only time.
        let ratio = with_compute / cs_only;
        assert!(ratio < 1.7, "outside compute overlapped: ratio {ratio}");
        assert!(ratio > 1.0);
    }

    #[test]
    fn iteration_accounting() {
        let cfg = MultiThreadedConfig::with_compute(2, 10, NodeId(0));
        let platform =
            Platform::new(PlatformConfig::new(Architecture::IvyBridge).with_perfect_counters());
        let mem = Arc::new(MemorySystem::new(
            platform,
            MemSimConfig::default().without_jitter(),
        ));
        let out = Arc::new(parking_lot::Mutex::new(0));
        let o = Arc::clone(&out);
        Engine::new(mem).run(move |ctx| {
            *o.lock() = run_multithreaded(ctx, &cfg).total_iterations;
        });
        assert_eq!(*out.lock(), 2 * 10 * 200);
    }
}
