//! PageRank by power iteration (paper §4.7, Fig. 16 (a)-(b)).
//!
//! The paper uses the Yahoo linear-system PageRank on a 4.8M-vertex graph
//! converging in 64 iterations; this is the classic power-iteration
//! formulation on the scaled-down generator graph. The implementation is
//! single-threaded, as the paper's is.
//!
//! Memory behaviour per iteration: sequential sweeps over `row_ptr` and
//! `col_idx` (prefetch-friendly, one memory touch per 16 elements) and a
//! random gather of `rank_src[neighbour]` per edge (cache-hostile) —
//! gathers from consecutive edges are independent, so they issue as
//! batches and enjoy memory-level parallelism, like loads from an
//! out-of-order core.

use quartz_platform::time::Duration;
use quartz_platform::NodeId;
use quartz_threadsim::ThreadCtx;

use crate::graph::{Graph, SimGraph};

/// PageRank parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PageRankConfig {
    /// Damping factor (0.85 is customary).
    pub damping: f64,
    /// Convergence threshold on the L1 delta (the paper reports
    /// convergence "with less than 9.563e-08 error").
    pub tolerance: f64,
    /// Iteration cap (64 in the paper).
    pub max_iterations: u32,
    /// Node for the graph structure arrays.
    pub structure_node: NodeId,
    /// Node for the rank vectors.
    pub rank_node: NodeId,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            damping: 0.85,
            tolerance: 1e-7,
            max_iterations: 64,
            structure_node: NodeId(0),
            rank_node: NodeId(0),
        }
    }
}

/// PageRank output.
#[derive(Clone, Debug, PartialEq)]
pub struct PageRankResult {
    /// Completion time of the iteration loop.
    pub elapsed: Duration,
    /// Iterations executed.
    pub iterations: u32,
    /// Final L1 delta.
    pub final_delta: f64,
    /// Converged rank vector (host-computed ground truth).
    pub ranks: Vec<f64>,
}

/// Maximum independent rank gathers issued as one batch.
const GATHER_BATCH: usize = 8;

/// Runs PageRank over `graph`, issuing its memory traffic through `ctx`.
///
/// # Panics
///
/// Panics if allocation fails.
pub fn run_pagerank(ctx: &mut ThreadCtx, graph: &Graph, config: &PageRankConfig) -> PageRankResult {
    let mut sim = SimGraph::load(ctx, graph, config.structure_node, config.rank_node);
    let n = graph.n;
    let mut src = vec![1.0 / n as f64; n];
    let mut dst = vec![0.0f64; n];
    // Pull-based PageRank treats the CSR lists as *in*-neighbours, so a
    // vertex gathers contributions from the vertices linking to it; the
    // out-degree of each vertex is its occurrence count across lists.
    let mut out_deg = vec![0u32; n];
    for &u in &graph.col_idx {
        out_deg[u as usize] += 1;
    }
    let inv_deg: Vec<f64> = out_deg
        .iter()
        .map(|&d| if d == 0 { 0.0 } else { 1.0 / d as f64 })
        .collect();

    let t0 = ctx.now();
    let mut iterations = 0;
    let mut delta = f64::INFINITY;
    let mut batch = Vec::with_capacity(GATHER_BATCH);
    while iterations < config.max_iterations && delta > config.tolerance {
        // Contribution of dangling nodes redistributed uniformly.
        let dangling: f64 = (0..n).filter(|&v| out_deg[v] == 0).map(|v| src[v]).sum();
        let base = (1.0 - config.damping) / n as f64 + config.damping * dangling / n as f64;

        let mut last_row_line = u64::MAX;
        let mut last_col_line = u64::MAX;
        // `v` indexes four parallel arrays plus the simulated address
        // space; an iterator over `dst` alone would obscure that.
        #[allow(clippy::needless_range_loop)]
        for v in 0..n {
            // Sequential row_ptr read (new cache line only).
            let rl = sim.row_ptr_addr(v as u64).line();
            if rl != last_row_line {
                ctx.load(sim.row_ptr_addr(v as u64));
                last_row_line = rl;
            }
            let mut acc = 0.0;
            let start = graph.row_ptr[v] as u64;
            let end = graph.row_ptr[v + 1] as u64;
            let mut e = start;
            while e < end {
                batch.clear();
                let chunk_end = (e + GATHER_BATCH as u64).min(end);
                while e < chunk_end {
                    // Sequential col_idx read (new line only).
                    let cl = sim.col_idx_addr(e).line();
                    if cl != last_col_line {
                        ctx.load(sim.col_idx_addr(e));
                        last_col_line = cl;
                    }
                    let u = graph.col_idx[e as usize] as usize;
                    batch.push(sim.rank_src_addr(u as u64));
                    acc += src[u] * inv_deg[u];
                    e += 1;
                }
                // Independent gathers issue together (MLP).
                ctx.load_batch(&batch);
            }
            dst[v] = base + config.damping * acc;
            // One store per completed rank line (8 ranks per line).
            if v % 8 == 7 || v == n - 1 {
                ctx.store(sim.rank_dst_addr(v as u64));
            }
        }

        delta = (0..n).map(|v| (dst[v] - src[v]).abs()).sum();
        std::mem::swap(&mut src, &mut dst);
        sim.swap_ranks();
        iterations += 1;
    }
    let elapsed = ctx.now().saturating_duration_since(t0);
    sim.free(ctx);
    PageRankResult {
        elapsed,
        iterations,
        final_delta: delta,
        ranks: src,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use quartz_memsim::{MemSimConfig, MemorySystem};
    use quartz_platform::{Architecture, Platform, PlatformConfig};
    use quartz_threadsim::Engine;

    fn run(graph: Graph, config: PageRankConfig) -> PageRankResult {
        let platform =
            Platform::new(PlatformConfig::new(Architecture::SandyBridge).with_perfect_counters());
        let mem = Arc::new(MemorySystem::new(
            platform,
            MemSimConfig::default().without_jitter(),
        ));
        let out = Arc::new(parking_lot::Mutex::new(None));
        let o = Arc::clone(&out);
        Engine::new(mem).run(move |ctx| {
            *o.lock() = Some(run_pagerank(ctx, &graph, &config));
        });
        let r = out.lock().take().unwrap();
        r
    }

    #[test]
    fn ranks_form_a_distribution() {
        let g = Graph::random(500, 5_000, 3);
        let r = run(g, PageRankConfig::default());
        let sum: f64 = r.ranks.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "ranks sum to 1: {sum}");
        assert!(r.ranks.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn converges_before_cap() {
        let g = Graph::random(300, 3_000, 9);
        let r = run(g, PageRankConfig::default());
        assert!(
            r.iterations < 64,
            "converged in {} iterations",
            r.iterations
        );
        assert!(r.final_delta <= 1e-7);
    }

    #[test]
    fn high_in_degree_vertices_rank_higher() {
        let g = Graph::random(1000, 20_000, 5);
        // Count in-degrees host-side.
        let mut indeg = vec![0usize; g.n];
        for &u in &g.col_idx {
            indeg[u as usize] += 1;
        }
        let r = run(g.clone(), PageRankConfig::default());
        // In pull-based form a vertex's in-degree is its CSR list length.
        let hi = (0..1000).max_by_key(|&v| g.degree(v)).unwrap();
        let lo = (0..1000).min_by_key(|&v| g.degree(v)).unwrap();
        let _ = indeg;
        assert!(r.ranks[hi] > r.ranks[lo]);
    }

    #[test]
    fn completion_time_scales_with_latency() {
        // Placing everything on the remote node should slow PageRank
        // down, but far less than the raw latency ratio — the sequential
        // sweeps are prefetched and the gathers overlap. The graph must
        // be large enough that the rank vectors defeat the LLC, so run
        // it on a machine with a small L3.
        let run_small_l3 = |rank_node: NodeId| {
            let platform = Platform::new(
                PlatformConfig::new(Architecture::SandyBridge).with_perfect_counters(),
            );
            let mut mc = MemSimConfig::default().without_jitter();
            mc.l3 = quartz_memsim::CacheGeometry::new(256 * 1024, 16);
            let mem = Arc::new(MemorySystem::new(platform, mc));
            let out = Arc::new(parking_lot::Mutex::new(0.0));
            let o = Arc::clone(&out);
            let g = Graph::random(20_000, 120_000, 1);
            Engine::new(mem).run(move |ctx| {
                let r = run_pagerank(
                    ctx,
                    &g,
                    &PageRankConfig {
                        structure_node: rank_node,
                        rank_node,
                        max_iterations: 2,
                        tolerance: 0.0,
                        ..PageRankConfig::default()
                    },
                );
                *o.lock() = r.elapsed.as_ns_f64();
            });
            let v = *out.lock();
            v
        };
        let local = run_small_l3(NodeId(0));
        let remote = run_small_l3(NodeId(1));
        let ratio = remote / local;
        assert!(ratio > 1.1, "remote slower: {ratio}");
        assert!(ratio < 163.0 / 97.0, "but sub-linear in latency: {ratio}");
    }
}
