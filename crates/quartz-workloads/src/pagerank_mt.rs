//! Barrier-synchronized parallel PageRank (extension).
//!
//! The paper's PageRank case study is single-threaded and its §7 lists
//! "other parallel programming constructs such as OpenMP primitives"
//! among the planned interposition targets. This workload is the natural
//! test for that extension: a bulk-synchronous parallel PageRank where
//! every power iteration ends in a barrier, so delay injected at the
//! barrier entry (see
//! [`before_barrier`](quartz_threadsim::Hooks::before_barrier)) must
//! propagate to the whole generation for the emulation to stay correct.

use std::sync::Arc;

use parking_lot::Mutex;
use quartz_platform::time::Duration;
use quartz_threadsim::ThreadCtx;

use crate::graph::{Graph, SimGraph};
use crate::pagerank::PageRankConfig;

/// Result of a parallel PageRank run.
#[derive(Clone, Debug, PartialEq)]
pub struct ParallelPageRankResult {
    /// Wall completion time.
    pub elapsed: Duration,
    /// Iterations executed.
    pub iterations: u32,
    /// Final rank vector.
    pub ranks: Vec<f64>,
}

struct SharedRanks {
    src: Vec<f64>,
    dst: Vec<f64>,
    /// Per-iteration L1 delta, accumulated by the leader.
    delta: f64,
    iterations: u32,
    done: bool,
}

/// Runs PageRank with `threads` workers, each owning a contiguous vertex
/// range, synchronized by a barrier per phase.
///
/// # Panics
///
/// Panics if `threads` is zero or allocation fails.
pub fn run_pagerank_parallel(
    ctx: &mut ThreadCtx,
    graph: &Graph,
    config: &PageRankConfig,
    threads: usize,
) -> ParallelPageRankResult {
    assert!(threads >= 1, "need at least one worker");
    let n = graph.n;
    let sim = SimGraph::load(ctx, graph, config.structure_node, config.rank_node);
    let graph = Arc::new(graph.clone());

    let mut out_deg = vec![0u32; n];
    for &u in &graph.col_idx {
        out_deg[u as usize] += 1;
    }
    let inv_deg: Arc<Vec<f64>> = Arc::new(
        out_deg
            .iter()
            .map(|&d| if d == 0 { 0.0 } else { 1.0 / d as f64 })
            .collect(),
    );
    let dangling_vertices: Arc<Vec<usize>> =
        Arc::new((0..n).filter(|&v| out_deg[v] == 0).collect());

    let shared = Arc::new(Mutex::new(SharedRanks {
        src: vec![1.0 / n as f64; n],
        dst: vec![0.0; n],
        delta: 0.0,
        iterations: 0,
        done: false,
    }));
    let barrier = ctx.barrier_new(threads);
    let cfg = *config;

    let t0 = ctx.now();
    let mut kids = Vec::with_capacity(threads);
    for t in 0..threads {
        let graph = Arc::clone(&graph);
        let inv_deg = Arc::clone(&inv_deg);
        let dangling = Arc::clone(&dangling_vertices);
        let shared = Arc::clone(&shared);
        let lo = t * n / threads;
        let hi = (t + 1) * n / threads;
        kids.push(ctx.spawn(move |c| {
            let mut batch = Vec::with_capacity(8);
            loop {
                // Snapshot the base term (host-side, no ctx ops inside).
                let (base, done) = {
                    let st = shared.lock();
                    if st.done {
                        (0.0, true)
                    } else {
                        let d: f64 = dangling.iter().map(|&v| st.src[v]).sum();
                        (
                            (1.0 - cfg.damping) / graph.n as f64 + cfg.damping * d / graph.n as f64,
                            false,
                        )
                    }
                };
                if done {
                    break;
                }

                // Gather phase over this thread's vertex range.
                let mut last_row_line = u64::MAX;
                let mut last_col_line = u64::MAX;
                for v in lo..hi {
                    let rl = sim.row_ptr_addr(v as u64).line();
                    if rl != last_row_line {
                        c.load(sim.row_ptr_addr(v as u64));
                        last_row_line = rl;
                    }
                    let start = graph.row_ptr[v] as u64;
                    let end = graph.row_ptr[v + 1] as u64;
                    let mut acc = 0.0;
                    let mut e = start;
                    while e < end {
                        batch.clear();
                        let chunk = (e + 8).min(end);
                        let contribution: f64 = {
                            let st = shared.lock();
                            let mut sum = 0.0;
                            for k in e..chunk {
                                let u = graph.col_idx[k as usize] as usize;
                                sum += st.src[u] * inv_deg[u];
                            }
                            sum
                        };
                        for k in e..chunk {
                            let cl = sim.col_idx_addr(k).line();
                            if cl != last_col_line {
                                c.load(sim.col_idx_addr(k));
                                last_col_line = cl;
                            }
                            let u = graph.col_idx[k as usize] as u64;
                            batch.push(sim.rank_src_addr(u));
                        }
                        c.load_batch(&batch);
                        acc += contribution;
                        e = chunk;
                    }
                    {
                        let mut st = shared.lock();
                        st.dst[v] = base + cfg.damping * acc;
                    }
                    if v % 8 == 7 || v == hi - 1 {
                        c.store(sim.rank_dst_addr(v as u64));
                    }
                }

                // End of iteration: rendezvous; the leader reduces.
                if c.barrier_wait(barrier) {
                    let mut st = shared.lock();
                    let delta: f64 = (0..graph.n).map(|v| (st.dst[v] - st.src[v]).abs()).sum();
                    let st = &mut *st;
                    std::mem::swap(&mut st.src, &mut st.dst);
                    st.delta = delta;
                    st.iterations += 1;
                    st.done = st.iterations >= cfg.max_iterations || delta <= cfg.tolerance;
                }
                // Wait for the reduction before the next iteration.
                c.barrier_wait(barrier);
            }
        }));
    }
    for k in kids {
        ctx.join(k);
    }
    let elapsed = ctx.now().saturating_duration_since(t0);
    sim.free(ctx);
    let st = shared.lock();
    ParallelPageRankResult {
        elapsed,
        iterations: st.iterations,
        ranks: st.src.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quartz_memsim::{MemSimConfig, MemorySystem};
    use quartz_platform::{Architecture, Platform, PlatformConfig};
    use quartz_threadsim::Engine;

    use crate::pagerank::run_pagerank;

    fn run(threads: usize, graph: Graph) -> ParallelPageRankResult {
        let platform =
            Platform::new(PlatformConfig::new(Architecture::IvyBridge).with_perfect_counters());
        let mem = Arc::new(MemorySystem::new(
            platform,
            MemSimConfig::default().without_jitter(),
        ));
        let out = Arc::new(Mutex::new(None));
        let o = Arc::clone(&out);
        Engine::new(mem).run(move |ctx| {
            *o.lock() = Some(run_pagerank_parallel(
                ctx,
                &graph,
                &PageRankConfig::default(),
                threads,
            ));
        });
        let r = out.lock().take().unwrap();
        r
    }

    #[test]
    fn parallel_matches_sequential_ranks() {
        let g = Graph::random(400, 4_000, 21);
        let par = run(4, g.clone());

        let platform =
            Platform::new(PlatformConfig::new(Architecture::IvyBridge).with_perfect_counters());
        let mem = Arc::new(MemorySystem::new(
            platform,
            MemSimConfig::default().without_jitter(),
        ));
        let out = Arc::new(Mutex::new(None));
        let o = Arc::clone(&out);
        let g2 = g.clone();
        Engine::new(mem).run(move |ctx| {
            *o.lock() = Some(run_pagerank(ctx, &g2, &PageRankConfig::default()));
        });
        let seq = out.lock().take().unwrap();

        assert_eq!(par.iterations, seq.iterations);
        for (a, b) in par.ranks.iter().zip(&seq.ranks) {
            assert!((a - b).abs() < 1e-12, "parallel == sequential ranks");
        }
    }

    #[test]
    fn parallel_is_faster_in_virtual_time() {
        let g = Graph::random(2_000, 30_000, 8);
        let one = run(1, g.clone());
        let four = run(4, g);
        let speedup = one.elapsed.as_ns_f64() / four.elapsed.as_ns_f64();
        // Memory-bound gathers share the LLC and DRAM channels, so the
        // scaling is well below linear but clearly present.
        assert!(speedup > 1.5, "4 workers speed up the iteration: {speedup}");
    }

    #[test]
    fn ranks_still_form_distribution() {
        let g = Graph::random(300, 3_000, 4);
        let r = run(3, g);
        let sum: f64 = r.ranks.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum {sum}");
    }
}
