//! A producer/consumer pipeline over a condition variable (extension).
//!
//! Exercises the `before_cond_notify` interposition path: delay
//! accumulated by a producer must be injected before the notify so that
//! consumers observe items no earlier than slower NVM would have made
//! them available — the condvar analogue of the paper's Fig. 4 (b) lock
//! hand-off argument.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;
use quartz_platform::time::Duration;
use quartz_platform::NodeId;
use quartz_threadsim::ThreadCtx;

use crate::chain::Chain;

/// Pipeline parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Items produced.
    pub items: u64,
    /// Pointer-chase iterations the producer performs per item
    /// (simulated-memory work whose NVM delay must propagate).
    pub produce_work: u64,
    /// Pointer-chase iterations the consumer performs per item.
    pub consume_work: u64,
    /// Node the work chains live on.
    pub node: NodeId,
    /// Chain length.
    pub lines_per_chain: u64,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            items: 200,
            produce_work: 50,
            consume_work: 25,
            node: NodeId(0),
            lines_per_chain: 1 << 16,
            seed: 0x9192,
        }
    }
}

/// Pipeline output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PipelineResult {
    /// Wall completion time.
    pub elapsed: Duration,
    /// Items that flowed through the queue.
    pub items: u64,
}

/// Runs a single-producer / single-consumer pipeline through a condvar
/// queue.
///
/// # Panics
///
/// Panics if allocation fails.
pub fn run_pipeline(ctx: &mut ThreadCtx, config: &PipelineConfig) -> PipelineResult {
    let m = ctx.mutex_new();
    let cv = ctx.cond_new();
    let queue: Arc<Mutex<VecDeque<u64>>> = Arc::new(Mutex::new(VecDeque::new()));
    let cfg = *config;

    let t0 = ctx.now();
    let q = Arc::clone(&queue);
    let producer = ctx.spawn(move |c| {
        let mut chain = Chain::build(c, cfg.node, cfg.lines_per_chain, cfg.seed);
        for i in 0..cfg.items {
            for _ in 0..cfg.produce_work {
                chain.step(c);
            }
            c.mutex_lock(m);
            q.lock().push_back(i);
            c.cond_notify_one(cv);
            c.mutex_unlock(m);
        }
        chain.free(c);
    });
    let q = Arc::clone(&queue);
    let consumer = ctx.spawn(move |c| {
        let mut chain = Chain::build(c, cfg.node, cfg.lines_per_chain, cfg.seed ^ 0xF00D);
        for _ in 0..cfg.items {
            c.mutex_lock(m);
            while q.lock().is_empty() {
                c.cond_wait(cv, m);
            }
            let _item = q.lock().pop_front();
            c.mutex_unlock(m);
            for _ in 0..cfg.consume_work {
                chain.step(c);
            }
        }
        chain.free(c);
    });
    ctx.join(producer);
    ctx.join(consumer);
    PipelineResult {
        elapsed: ctx.now().saturating_duration_since(t0),
        items: config.items,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quartz_memsim::{MemSimConfig, MemorySystem};
    use quartz_platform::{Architecture, Platform, PlatformConfig};
    use quartz_threadsim::Engine;

    fn run(config: PipelineConfig) -> PipelineResult {
        let platform =
            Platform::new(PlatformConfig::new(Architecture::IvyBridge).with_perfect_counters());
        let mem = Arc::new(MemorySystem::new(
            platform,
            MemSimConfig::default().without_jitter(),
        ));
        let out = Arc::new(Mutex::new(None));
        let o = Arc::clone(&out);
        Engine::new(mem).run(move |ctx| {
            *o.lock() = Some(run_pipeline(ctx, &config));
        });
        let r = out.lock().take().unwrap();
        r
    }

    #[test]
    fn all_items_flow_through() {
        let r = run(PipelineConfig {
            items: 100,
            ..PipelineConfig::default()
        });
        assert_eq!(r.items, 100);
        assert!(r.elapsed > Duration::ZERO);
    }

    #[test]
    fn producer_bound_pipeline_tracks_producer_time() {
        // Producer does 4x the consumer's work: wall time ≈ producer time.
        let r = run(PipelineConfig {
            items: 200,
            produce_work: 80,
            consume_work: 20,
            ..PipelineConfig::default()
        });
        let per_item = r.elapsed.as_ns_f64() / 200.0;
        // 80 chase steps at ~90 ns.
        assert!(per_item > 80.0 * 80.0, "producer-bound: {per_item} ns/item");
        assert!(
            per_item < 80.0 * 90.0 * 1.5,
            "consumer overlapped: {per_item}"
        );
    }
}
