//! The STREAM *copy* kernel (paper §4.2, Fig. 8).
//!
//! "We estimate the maximum bandwidth possible for each register value by
//! measuring the time to stream through a large memory region using x86
//! streaming instructions (SSE). To effectively saturate memory
//! bandwidth, we fork multiple threads each of which uses streaming
//! instructions to access a part of the region." (§3.1)

use quartz_platform::time::Duration;
use quartz_platform::NodeId;
use quartz_threadsim::ThreadCtx;

/// STREAM copy parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamConfig {
    /// Worker threads (forked from the calling thread).
    pub threads: usize,
    /// Cache lines copied per thread.
    pub lines_per_thread: u64,
    /// Node both source and destination live on.
    pub node: NodeId,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            threads: 4,
            lines_per_thread: 50_000,
            node: NodeId(0),
        }
    }
}

/// STREAM copy output.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StreamResult {
    /// Wall time of the parallel copy.
    pub elapsed: Duration,
    /// Total bytes moved (reads + writes).
    pub bytes: u64,
}

impl StreamResult {
    /// Copy bandwidth in GB/s (the STREAM convention counts the read and
    /// the write of each element).
    pub fn bandwidth_gbps(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.bytes as f64 / self.elapsed.as_ns_f64()
    }
}

/// Runs the copy kernel `c[i] = a[i]` with `threads` workers, each
/// loading its slice of `a` and writing `c` with non-temporal stores.
///
/// # Panics
///
/// Panics if `threads` is zero or allocation fails.
pub fn run_stream_copy(ctx: &mut ThreadCtx, config: &StreamConfig) -> StreamResult {
    assert!(config.threads >= 1, "need at least one stream thread");
    let lines = config.lines_per_thread;
    let node = config.node;
    let t0 = ctx.now();
    let mut workers = Vec::with_capacity(config.threads);
    for _ in 0..config.threads {
        workers.push(ctx.spawn(move |c| {
            let src = c.alloc_on(node, lines * 64);
            let dst = c.alloc_on(node, lines * 64);
            // SSE streaming reads issue independent line loads back to
            // back; model a vector-unrolled loop as 8-line load batches
            // so the misses overlap the way hardware sustains them.
            let mut batch = [src; 8];
            let mut i = 0;
            while i < lines {
                let chunk = (lines - i).min(8);
                for (k, slot) in batch[..chunk as usize].iter_mut().enumerate() {
                    *slot = src.offset_by((i + k as u64) * 64);
                }
                c.load_batch(&batch[..chunk as usize]);
                for k in 0..chunk {
                    c.store_stream(dst.offset_by((i + k) * 64));
                }
                i += chunk;
            }
            c.free(src).expect("stream src");
            c.free(dst).expect("stream dst");
        }));
    }
    for w in workers {
        ctx.join(w);
    }
    let elapsed = ctx.now().saturating_duration_since(t0);
    StreamResult {
        elapsed,
        bytes: config.threads as u64 * lines * 128, // 64 read + 64 written
    }
}

/// Runs the triad kernel `a[i] = b[i] + k*c[i]` with `threads` workers,
/// using *regular* (write-back, RFO-path) stores instead of streaming
/// ones: each written line is first read for ownership and the posted
/// stores back up in the store buffer. This is the write-heavy cell of
/// the asymmetry ablation — its cost is dominated by store-path events
/// the load-side counters cannot see.
///
/// # Panics
///
/// Panics if `threads` is zero or allocation fails.
pub fn run_stream_triad(ctx: &mut ThreadCtx, config: &StreamConfig) -> StreamResult {
    assert!(config.threads >= 1, "need at least one stream thread");
    let lines = config.lines_per_thread;
    let node = config.node;
    let t0 = ctx.now();
    let mut workers = Vec::with_capacity(config.threads);
    for _ in 0..config.threads {
        workers.push(ctx.spawn(move |c| {
            let b = c.alloc_on(node, lines * 64);
            let cc = c.alloc_on(node, lines * 64);
            let a = c.alloc_on(node, lines * 64);
            let mut batch = [b; 8];
            let mut i = 0;
            while i < lines {
                let chunk = (lines - i).min(8);
                // Two source streams load in overlapping batches...
                for (k, slot) in batch[..chunk as usize].iter_mut().enumerate() {
                    *slot = b.offset_by((i + k as u64) * 64);
                }
                c.load_batch(&batch[..chunk as usize]);
                for (k, slot) in batch[..chunk as usize].iter_mut().enumerate() {
                    *slot = cc.offset_by((i + k as u64) * 64);
                }
                c.load_batch(&batch[..chunk as usize]);
                // ...and the destination takes posted RFO stores.
                for k in 0..chunk {
                    c.store(a.offset_by((i + k) * 64));
                }
                i += chunk;
            }
            c.free(b).expect("triad b");
            c.free(cc).expect("triad c");
            c.free(a).expect("triad a");
        }));
    }
    for w in workers {
        ctx.join(w);
    }
    let elapsed = ctx.now().saturating_duration_since(t0);
    StreamResult {
        elapsed,
        // Triad convention: two reads + one write per element.
        bytes: config.threads as u64 * lines * 192,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use quartz_memsim::{MemSimConfig, MemorySystem};
    use quartz_platform::{Architecture, Platform, PlatformConfig, SocketId};
    use quartz_threadsim::Engine;

    fn machine() -> Arc<MemorySystem> {
        let platform =
            Platform::new(PlatformConfig::new(Architecture::SandyBridge).with_perfect_counters());
        Arc::new(MemorySystem::new(
            platform,
            MemSimConfig::default().without_jitter(),
        ))
    }

    fn measure(mem: &Arc<MemorySystem>) -> f64 {
        let engine = Engine::new(Arc::clone(mem));
        let out = Arc::new(parking_lot::Mutex::new(0.0));
        let o = Arc::clone(&out);
        engine.run(move |ctx| {
            let cfg = StreamConfig {
                threads: 4,
                lines_per_thread: 20_000,
                node: NodeId(0),
            };
            *o.lock() = run_stream_copy(ctx, &cfg).bandwidth_gbps();
        });
        let v = *out.lock();
        v
    }

    #[test]
    fn multithreaded_copy_approaches_peak() {
        let mem = machine();
        let bw = measure(&mem);
        let peak = mem.config().node_peak_bw_gbps();
        assert!(bw > 0.6 * peak, "stream bw {bw} of peak {peak}");
        assert!(bw <= 1.05 * peak);
    }

    #[test]
    fn throttling_scales_bandwidth_linearly() {
        let mem = machine();
        let full = measure(&mem);
        let kmod = mem.platform().kernel_module();
        kmod.set_dimm_throttle(SocketId(0), 0xFFF / 4).unwrap();
        mem.invalidate_caches();
        let quarter = measure(&mem);
        let ratio = quarter / full;
        assert!(
            (0.2..0.35).contains(&ratio),
            "quarter throttle gives ~quarter bandwidth: {ratio}"
        );
    }

    #[test]
    fn more_threads_mean_more_bandwidth_until_saturation() {
        let mem = machine();
        let engine = Engine::new(Arc::clone(&mem));
        let out = Arc::new(parking_lot::Mutex::new((0.0, 0.0)));
        let o = Arc::clone(&out);
        engine.run(move |ctx| {
            let one = run_stream_copy(
                ctx,
                &StreamConfig {
                    threads: 1,
                    lines_per_thread: 20_000,
                    node: NodeId(0),
                },
            );
            let four = run_stream_copy(
                ctx,
                &StreamConfig {
                    threads: 4,
                    lines_per_thread: 20_000,
                    node: NodeId(0),
                },
            );
            *o.lock() = (one.bandwidth_gbps(), four.bandwidth_gbps());
        });
        let (one, four) = *out.lock();
        assert!(four > one, "one thread {one}, four threads {four}");
    }
}
