//! Zipfian key sampling for the key-value store driver.
//!
//! Key-value workloads are typically skewed; the driver samples keys from
//! a Zipf(θ) distribution over `n` items using the standard inverse-CDF
//! rejection-free method of Gray et al. (the same generator YCSB uses).

/// A Zipf-distributed sampler over `0..n`.
#[derive(Clone, Debug)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    state: u64,
}

impl Zipf {
    /// Creates a sampler over `0..n` with skew `theta` in `[0, 1)`.
    /// `theta = 0` is uniform; `0.99` is YCSB's default hot-spot skew.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is outside `[0, 1)`.
    pub fn new(n: u64, theta: f64, seed: u64) -> Self {
        assert!(n > 0, "need at least one item");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0,1)");
        let zetan: f64 = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let zeta2: f64 = (1..=2.min(n)).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf {
            n,
            theta,
            alpha,
            zetan,
            eta,
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    fn next_f64(&mut self) -> f64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = self.state;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        (x >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Samples the next key.
    pub fn sample(&mut self) -> u64 {
        let u = self.next_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        v.min(self.n - 1)
    }

    /// Number of items.
    pub fn n(&self) -> u64 {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_in_range() {
        let mut z = Zipf::new(1000, 0.99, 7);
        for _ in 0..10_000 {
            assert!(z.sample() < 1000);
        }
    }

    #[test]
    fn skew_concentrates_on_head() {
        let mut z = Zipf::new(10_000, 0.99, 7);
        let mut head = 0u64;
        let trials = 50_000;
        for _ in 0..trials {
            if z.sample() < 100 {
                head += 1;
            }
        }
        // With theta=0.99 the top 1% of keys draw a large share.
        let frac = head as f64 / trials as f64;
        assert!(frac > 0.4, "head fraction {frac}");
    }

    #[test]
    fn near_uniform_when_theta_zero() {
        let mut z = Zipf::new(1000, 0.0, 7);
        let mut head = 0u64;
        let trials = 50_000;
        for _ in 0..trials {
            if z.sample() < 100 {
                head += 1;
            }
        }
        let frac = head as f64 / trials as f64;
        assert!((frac - 0.1).abs() < 0.02, "uniform head fraction {frac}");
    }

    #[test]
    fn deterministic_for_seed() {
        let a: Vec<u64> = {
            let mut z = Zipf::new(100, 0.5, 3);
            (0..50).map(|_| z.sample()).collect()
        };
        let b: Vec<u64> = {
            let mut z = Zipf::new(100, 0.5, 3);
            (0..50).map(|_| z.sample()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn rejects_bad_theta() {
        let _ = Zipf::new(10, 1.0, 0);
    }
}
