//! Zipfian key sampling for the key-value store driver.
//!
//! Key-value workloads are typically skewed; the driver samples keys from
//! a Zipf(θ) distribution over `n` items using the standard inverse-CDF
//! rejection-free method of Gray et al. (the same generator YCSB uses).

use crate::error::WorkloadError;

/// A Zipf-distributed sampler over `0..n`.
#[derive(Clone, Debug)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    state: u64,
}

impl Zipf {
    /// Creates a sampler over `0..n` with skew `theta` in `[0, 1)`.
    /// `theta = 0` is uniform; `0.99` is YCSB's default hot-spot skew.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is outside `[0, 1)`. Use
    /// [`Zipf::try_new`] to handle bad configurations as typed errors.
    pub fn new(n: u64, theta: f64, seed: u64) -> Self {
        Self::try_new(n, theta, seed).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// [`WorkloadError::EmptyDomain`] when `n` is zero,
    /// [`WorkloadError::OutOfRange`] when `theta` ∉ `[0, 1)` (or is not
    /// finite).
    pub fn try_new(n: u64, theta: f64, seed: u64) -> Result<Self, WorkloadError> {
        if n == 0 {
            return Err(WorkloadError::EmptyDomain {
                what: "zipf key space",
            });
        }
        if !theta.is_finite() || !(0.0..1.0).contains(&theta) {
            return Err(WorkloadError::OutOfRange {
                what: "zipf theta",
                value: theta,
                bounds: "[0, 1)",
            });
        }
        let zetan: f64 = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let zeta2: f64 = (1..=2.min(n)).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Ok(Zipf {
            n,
            theta,
            alpha,
            zetan,
            eta,
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        })
    }

    fn next_f64(&mut self) -> f64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = self.state;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        (x >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Samples the next key.
    pub fn sample(&mut self) -> u64 {
        let u = self.next_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        v.min(self.n - 1)
    }

    /// Number of items.
    pub fn n(&self) -> u64 {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_in_range() {
        let mut z = Zipf::new(1000, 0.99, 7);
        for _ in 0..10_000 {
            assert!(z.sample() < 1000);
        }
    }

    #[test]
    fn skew_concentrates_on_head() {
        let mut z = Zipf::new(10_000, 0.99, 7);
        let mut head = 0u64;
        let trials = 50_000;
        for _ in 0..trials {
            if z.sample() < 100 {
                head += 1;
            }
        }
        // With theta=0.99 the top 1% of keys draw a large share.
        let frac = head as f64 / trials as f64;
        assert!(frac > 0.4, "head fraction {frac}");
    }

    #[test]
    fn near_uniform_when_theta_zero() {
        let mut z = Zipf::new(1000, 0.0, 7);
        let mut head = 0u64;
        let trials = 50_000;
        for _ in 0..trials {
            if z.sample() < 100 {
                head += 1;
            }
        }
        let frac = head as f64 / trials as f64;
        assert!((frac - 0.1).abs() < 0.02, "uniform head fraction {frac}");
    }

    #[test]
    fn deterministic_for_seed() {
        let a: Vec<u64> = {
            let mut z = Zipf::new(100, 0.5, 3);
            (0..50).map(|_| z.sample()).collect()
        };
        let b: Vec<u64> = {
            let mut z = Zipf::new(100, 0.5, 3);
            (0..50).map(|_| z.sample()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn rejects_bad_theta() {
        let _ = Zipf::new(10, 1.0, 0);
    }

    #[test]
    fn try_new_reports_typed_errors() {
        use crate::error::WorkloadError;
        assert!(matches!(
            Zipf::try_new(0, 0.5, 1),
            Err(WorkloadError::EmptyDomain {
                what: "zipf key space"
            })
        ));
        assert!(matches!(
            Zipf::try_new(10, 1.0, 1),
            Err(WorkloadError::OutOfRange {
                what: "zipf theta",
                ..
            })
        ));
        assert!(matches!(
            Zipf::try_new(10, f64::NAN, 1),
            Err(WorkloadError::OutOfRange { .. })
        ));
        assert!(Zipf::try_new(10, 0.99, 1).is_ok());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Skew values exercised by the distribution-shape property.
        const THETAS: [f64; 3] = [0.0, 0.5, 0.9];

        /// Analytic mass of the top `k` of `n` zipfian keys.
        fn head_mass(n: u64, k: u64, theta: f64) -> f64 {
            let zk: f64 = (1..=k).map(|i| 1.0 / (i as f64).powf(theta)).sum();
            let zn: f64 = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum();
            zk / zn
        }

        proptest! {
            #[test]
            fn sequences_are_deterministic_per_seed_and_stream(
                n in 10u64..10_000,
                ti in 0usize..3,
                seed in 0u64..1 << 48,
            ) {
                let theta = THETAS[ti];
                let sample = |s: u64| -> Vec<u64> {
                    let mut z = Zipf::new(n, theta, s);
                    (0..100).map(|_| z.sample()).collect()
                };
                // Same (seed, stream) ⇒ identical sequence.
                prop_assert_eq!(sample(seed), sample(seed));
                // A different stream id decorrelates the sequence.
                prop_assert_ne!(sample(seed), sample(seed.wrapping_add(1)));
            }

            #[test]
            fn head_frequency_matches_analytic_mass(
                ti in 0usize..3,
                seed in 0u64..1 << 32,
            ) {
                let theta = THETAS[ti];
                let n = 1_000u64;
                let k = 100u64;
                let expect = head_mass(n, k, theta);
                let mut z = Zipf::new(n, theta, seed);
                let trials = 20_000u64;
                let head = (0..trials).filter(|_| z.sample() < k).count();
                let got = head as f64 / trials as f64;
                // Gray's inverse-CDF method is approximate; allow its
                // documented few-percent error plus sampling noise.
                prop_assert!(
                    (got - expect).abs() < 0.06,
                    "theta={}: head freq {} vs analytic {}",
                    theta,
                    got,
                    expect
                );
            }
        }
    }
}
