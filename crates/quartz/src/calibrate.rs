//! Calibration utilities.
//!
//! The real emulator's initialization measures the machine: memory access
//! latencies per node (the paper's Table 2 methodology — a dependent
//! pointer chase) and the maximum attainable bandwidth per throttle
//! setting (streaming through a large region with SSE stores, §3.1).
//! These helpers run the same measurements inside a simulated thread.

use quartz_memsim::Addr;
use quartz_platform::NodeId;
use quartz_threadsim::ThreadCtx;

/// Measures the average dependent-load latency to `node` in nanoseconds,
/// chasing `accesses` randomly-ordered cache lines over a buffer sized to
/// defeat the LLC.
///
/// # Panics
///
/// Panics if the node cannot satisfy the buffer allocation.
pub fn measure_dram_latency_ns(ctx: &mut ThreadCtx, node: NodeId, accesses: u64) -> f64 {
    let l3_bytes = ctx.mem().config().l3.size_bytes;
    let buf_bytes = 8 * l3_bytes;
    let lines = buf_bytes / 64;
    let buf = ctx.alloc_on(node, buf_bytes);

    // Deterministic scrambled visit order (LCG over the line space).
    let mut idx: u64 = 1;
    let next = |i: u64| (i.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1)) % lines;

    // Warm the TLB and counters out of the measurement.
    for _ in 0..64 {
        idx = next(idx);
        ctx.load(buf.offset_by(idx * 64));
    }
    let t0 = ctx.now();
    for _ in 0..accesses {
        idx = next(idx);
        ctx.load(buf.offset_by(idx * 64));
    }
    let elapsed = ctx.now().saturating_duration_since(t0);
    // INVARIANT: `buf` was allocated above in this same function and
    // never escapes, so the free cannot fail; a failure would be an
    // allocator bug contained by the engine as a ThreadPanic.
    ctx.free(buf).expect("calibration buffer");
    elapsed.as_ns_f64() / accesses as f64
}

/// Measures attainable streaming-store bandwidth to `node` in GB/s by
/// writing `lines` cache lines with non-temporal stores.
///
/// # Panics
///
/// Panics if the node cannot satisfy the buffer allocation.
pub fn measure_stream_bandwidth_gbps(ctx: &mut ThreadCtx, node: NodeId, lines: u64) -> f64 {
    let buf = ctx.alloc_on(node, lines * 64);
    let t0 = ctx.now();
    for i in 0..lines {
        ctx.store_stream(buf.offset_by(i * 64));
    }
    let elapsed = ctx.now().saturating_duration_since(t0);
    // INVARIANT: same-function allocation, see above.
    ctx.free(buf).expect("calibration buffer");
    if elapsed.is_zero() {
        return 0.0;
    }
    (lines * 64) as f64 / elapsed.as_ns_f64()
}

/// One measured latency summary (min/avg/max over trials) — the shape of
/// the paper's Table 2.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencySummary {
    /// Minimum trial average (ns).
    pub min_ns: f64,
    /// Mean of trial averages (ns).
    pub avg_ns: f64,
    /// Maximum trial average (ns).
    pub max_ns: f64,
}

/// Runs `trials` latency measurements and summarizes them.
///
/// # Panics
///
/// Panics if allocation fails or `trials` is zero.
pub fn latency_summary(
    ctx: &mut ThreadCtx,
    node: NodeId,
    accesses: u64,
    trials: u32,
) -> LatencySummary {
    assert!(trials > 0, "need at least one trial");
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0;
    for _ in 0..trials {
        // Cold caches per trial, as the paper does between runs (§4.7).
        ctx.mem().invalidate_caches();
        let v = measure_dram_latency_ns(ctx, node, accesses);
        min = min.min(v);
        max = max.max(v);
        sum += v;
    }
    LatencySummary {
        min_ns: min,
        avg_ns: sum / trials as f64,
        max_ns: max,
    }
}

/// An allocation helper: builds the address of element `i` of an array
/// of `stride`-byte records starting at `base`.
pub fn element(base: Addr, i: u64, stride: u64) -> Addr {
    base.offset_by(i * stride)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use quartz_memsim::{MemSimConfig, MemorySystem};
    use quartz_platform::{Architecture, Platform, PlatformConfig};
    use quartz_threadsim::Engine;

    fn engine(arch: Architecture) -> Engine {
        let platform = Platform::new(PlatformConfig::new(arch).with_perfect_counters());
        Engine::new(Arc::new(MemorySystem::new(
            platform,
            MemSimConfig::default().without_jitter(),
        )))
    }

    #[test]
    fn latency_calibration_recovers_table2() {
        let out = Arc::new(parking_lot::Mutex::new((0.0, 0.0)));
        let o = Arc::clone(&out);
        engine(Architecture::Haswell).run(move |ctx| {
            let local = measure_dram_latency_ns(ctx, NodeId(0), 10_000);
            let remote = measure_dram_latency_ns(ctx, NodeId(1), 10_000);
            *o.lock() = (local, remote);
        });
        let (local, remote) = *out.lock();
        assert!((local - 120.0).abs() < 4.0, "local {local}");
        assert!((remote - 175.0).abs() < 4.0, "remote {remote}");
    }

    #[test]
    fn bandwidth_calibration_is_positive_and_bounded() {
        let out = Arc::new(parking_lot::Mutex::new(0.0));
        let o = Arc::clone(&out);
        engine(Architecture::IvyBridge).run(move |ctx| {
            *o.lock() = measure_stream_bandwidth_gbps(ctx, NodeId(0), 50_000);
        });
        let bw = *out.lock();
        assert!(bw > 5.0, "stream bandwidth {bw}");
        assert!(bw <= 38.4 * 1.05, "bounded by node peak: {bw}");
    }

    #[test]
    fn latency_summary_orders_min_avg_max() {
        let out = Arc::new(parking_lot::Mutex::new(None));
        let o = Arc::clone(&out);
        engine(Architecture::IvyBridge).run(move |ctx| {
            *o.lock() = Some(latency_summary(ctx, NodeId(0), 3_000, 4));
        });
        let s = out.lock().unwrap();
        assert!(s.min_ns <= s.avg_ns && s.avg_ns <= s.max_ns);
        assert!((s.avg_ns - 87.0).abs() < 5.0);
    }

    #[test]
    fn element_addressing() {
        use quartz_memsim::Addr;
        let base = Addr::on_node(NodeId(0), 0);
        assert_eq!(element(base, 3, 64).offset(), 192);
        assert_eq!(element(base, 0, 128), base);
    }
}
