//! Emulator configuration.

use quartz_platform::time::Duration;

/// The NVM performance characteristics to emulate.
///
/// # The two write knobs
///
/// `write_delay_ns` and `write_latency_ns` are *different* knobs and
/// deliberately not coupled:
///
/// * `write_delay_ns` is the paper's §3.1 slow-write emulation: an extra
///   delay charged by **`pflush`** per cache line explicitly written back
///   to NVM. It models the synchronous cost of forcing a line out of the
///   cache, and only persistence code that flushes pays it.
/// * `write_latency_ns` activates the **asymmetric write model**: an
///   epoch-level Eq. 2-style term derived from store-side counters
///   (`RESOURCE_STALLS:SB` and the RFO/streaming-store misses), charging
///   ordinary posted stores whose buffer back-pressure the load-side
///   `STALLS_L2_PENDING` model cannot see. `None` (the default) keeps
///   the original symmetric model, byte for byte.
///
/// Flushed lines are charged once, by `pflush`, never again by the
/// asymmetric term: flush writebacks do not feed the store-miss counters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NvmTarget {
    /// Average NVM read latency in nanoseconds (`NVM_lat` in Eq. 1/2).
    pub read_latency_ns: f64,
    /// NVM bandwidth in GB/s; `None` leaves DRAM bandwidth unthrottled.
    pub bandwidth_gbps: Option<f64>,
    /// Extra delay injected by `pflush` per cache-line write to NVM, in
    /// nanoseconds (the paper's configurable slow-write emulation, §3.1).
    pub write_delay_ns: f64,
    /// Average NVM *write* latency in nanoseconds for the asymmetric
    /// write model (the store-side `NVM_lat` of the Eq. 2-style write
    /// term). `None` disables the asymmetric model entirely — no store
    /// counters are programmed or read, keeping symmetric runs
    /// byte-identical to the pre-asymmetry emulator.
    pub write_latency_ns: Option<f64>,
    /// NVM *write* bandwidth in GB/s, used to pace `pflush` WPQ drain
    /// when set; `None` leaves writes paced by `write_delay_ns` alone.
    /// Real NVMs are bandwidth-asymmetric (Optane DC: ~39 GB/s read vs
    /// ~14 GB/s write).
    pub write_bandwidth_gbps: Option<f64>,
}

impl NvmTarget {
    /// A target with the given read latency, full bandwidth, and a write
    /// delay equal to the read latency (a common PCM-like assumption).
    /// The asymmetric write model stays off: symmetric PCM-like targets
    /// charge writes only at `pflush`, exactly as the paper does.
    ///
    /// # Panics
    ///
    /// Panics if the latency is not positive.
    pub fn new(read_latency_ns: f64) -> Self {
        assert!(read_latency_ns > 0.0, "NVM latency must be positive");
        NvmTarget {
            read_latency_ns,
            bandwidth_gbps: None,
            write_delay_ns: read_latency_ns,
            write_latency_ns: None,
            write_bandwidth_gbps: None,
        }
    }

    /// An Optane DC persistent-memory target, calibrated from the
    /// measurements of Hirofuchi & Takano (arXiv 2002.06018): ~169 ns
    /// loaded read latency, ~90 ns write-to-WPQ latency, and strongly
    /// asymmetric bandwidth (~39.4 GB/s read, ~13.9 GB/s write).
    /// Activates the asymmetric write model; note the write latency is
    /// *below* typical remote-DRAM latency — writes land in the WPQ, not
    /// the media — which the model clamps to a zero write term on
    /// substrates whose DRAM is already slower.
    pub fn optane_dcpmm() -> Self {
        NvmTarget {
            read_latency_ns: 169.0,
            bandwidth_gbps: Some(39.4),
            write_delay_ns: 90.0,
            write_latency_ns: Some(90.0),
            write_bandwidth_gbps: Some(13.9),
        }
    }

    /// Sets the bandwidth target.
    pub fn with_bandwidth_gbps(mut self, gbps: f64) -> Self {
        assert!(gbps > 0.0, "bandwidth must be positive");
        self.bandwidth_gbps = Some(gbps);
        self
    }

    /// Sets the per-`pflush` write delay.
    pub fn with_write_delay_ns(mut self, ns: f64) -> Self {
        assert!(ns >= 0.0, "write delay must be non-negative");
        self.write_delay_ns = ns;
        self
    }

    /// Activates the asymmetric write model with the given NVM write
    /// latency (see the type-level docs for how this differs from
    /// [`NvmTarget::with_write_delay_ns`]).
    pub fn with_write_latency_ns(mut self, ns: f64) -> Self {
        assert!(ns > 0.0, "write latency must be positive");
        self.write_latency_ns = Some(ns);
        self
    }

    /// Sets the NVM write-bandwidth target for `pflush` pacing.
    pub fn with_write_bandwidth_gbps(mut self, gbps: f64) -> Self {
        assert!(gbps > 0.0, "write bandwidth must be positive");
        self.write_bandwidth_gbps = Some(gbps);
        self
    }

    /// Whether the asymmetric write model is active.
    pub fn is_asymmetric(&self) -> bool {
        self.write_latency_ns.is_some()
    }
}

/// Which analytic latency model computes the injected delay.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum LatencyModelKind {
    /// Eq. 1: count LLC misses and multiply by the latency difference.
    /// Ignores memory-level parallelism — over-injects for parallel
    /// misses (the Fig. 2 discussion). Kept for the ablation study.
    Simple,
    /// Eq. 2 + Eq. 3: derive serialized memory time from
    /// `STALLS_L2_PENDING`, which naturally captures MLP. The paper's
    /// model.
    #[default]
    StallBased,
}

/// How the library reads performance counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum CounterAccess {
    /// Direct user-mode `rdpmc` (the paper's choice; ≈500 cycles/read).
    #[default]
    Rdpmc,
    /// A PAPI-like virtualized framework that traps into the kernel:
    /// ≈8× more expensive (paper §3.2) — kept for the overhead ablation.
    Papi,
}

/// Whether the machine emulates one memory type or two.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum MemoryMode {
    /// All application memory is persistent memory: DRAM bandwidth is
    /// throttled machine-wide and every LLC miss contributes to the
    /// injected delay (paper §3.1).
    #[default]
    PmOnly,
    /// DRAM + NVM (paper §3.3): threads run on socket 0 with unmodified
    /// local DRAM; `pmalloc` maps virtual NVM onto the sibling socket's
    /// DRAM; only the remote share of the stall cycles is inflated.
    /// Requires the local/remote LLC-miss counter split (Ivy Bridge /
    /// Haswell).
    TwoMemory,
}

/// Full emulator configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct QuartzConfig {
    /// The NVM being emulated.
    pub target: NvmTarget,
    /// Maximum epoch length: the monitor signals any thread whose current
    /// epoch is older than this (default 10 ms — the value the paper
    /// settles on to minimize overhead at good accuracy, §4.4 fn. 4).
    pub max_epoch: Duration,
    /// Minimum epoch length: interposition points skip epoch creation if
    /// the current epoch is younger than this (default 0.1 ms; Fig. 13).
    pub min_epoch: Duration,
    /// Monitor thread wake-up period (default `max_epoch / 2`, so epochs
    /// close within 1.5x the maximum; wake-ups and epoch completions may
    /// drift apart, as in the paper).
    pub monitor_period: Duration,
    /// Which delay model to use.
    pub model: LatencyModelKind,
    /// How counters are read.
    pub counter_access: CounterAccess,
    /// When `false`, all epoch bookkeeping runs but no delay is injected —
    /// the paper's "switched-off delay injection" mode for measuring the
    /// emulator's own overhead (§3.2).
    pub inject_delays: bool,
    /// When `false`, synchronization interpositions (mutex lock/unlock,
    /// condvar notify) never close epochs — only the monitor's static
    /// epochs inject delays. This is the paper's Fig. 3 "independent
    /// threads" emulation, kept as the ablation baseline that Fig. 13
    /// shows failing for dependent threads.
    pub sync_interposition: bool,
    /// When `false`, simulated-atomic operations (CAS/store/fence seams)
    /// never close epochs and pay no hand-off accounting — the lock-free
    /// analogue of `sync_interposition`, i.e. the "naive host atomics"
    /// baseline that reproduces the paper's §6 limitation: delay
    /// accumulated before a CAS publication is *not* settled before the
    /// value becomes visible. Requires `sync_interposition` to have any
    /// effect (both gates must be open).
    pub atomic_interposition: bool,
    /// One or two memory types.
    pub memory_mode: MemoryMode,
    /// Measured average DRAM latencies used by the model, in ns
    /// (`(local, remote)`); `None` uses the platform's calibrated values.
    pub measured_dram_ns: Option<(f64, f64)>,
    /// Charge the 5.5-billion-cycle library initialization to the init
    /// clock (tracked in stats; never charged to workload time).
    pub charge_init_cost: bool,
}

impl QuartzConfig {
    /// A configuration with the paper's defaults for the given target.
    pub fn new(target: NvmTarget) -> Self {
        QuartzConfig {
            target,
            max_epoch: Duration::from_ms(10),
            min_epoch: Duration::from_us(100),
            monitor_period: Duration::from_ms(5),
            model: LatencyModelKind::default(),
            counter_access: CounterAccess::default(),
            inject_delays: true,
            sync_interposition: true,
            atomic_interposition: true,
            memory_mode: MemoryMode::default(),
            measured_dram_ns: None,
            charge_init_cost: true,
        }
    }

    /// Sets the maximum epoch; the monitor period follows at half of it,
    /// and the minimum epoch is clamped to stay below the maximum.
    pub fn with_max_epoch(mut self, d: Duration) -> Self {
        assert!(!d.is_zero(), "max epoch must be non-zero");
        self.max_epoch = d;
        self.monitor_period = Duration::from_ps((d.as_ps() / 2).max(1));
        self.min_epoch = self.min_epoch.min(Duration::from_ps(d.as_ps() / 2));
        self
    }

    /// Sets the minimum epoch.
    pub fn with_min_epoch(mut self, d: Duration) -> Self {
        self.min_epoch = d;
        self
    }

    /// Selects the latency model.
    pub fn with_model(mut self, model: LatencyModelKind) -> Self {
        self.model = model;
        self
    }

    /// Selects the counter access method.
    pub fn with_counter_access(mut self, access: CounterAccess) -> Self {
        self.counter_access = access;
        self
    }

    /// Switches off delay injection (overhead-measurement mode).
    pub fn without_delay_injection(mut self) -> Self {
        self.inject_delays = false;
        self
    }

    /// Disables epoch creation at synchronization primitives (the
    /// no-delay-propagation ablation of Fig. 13).
    pub fn without_sync_interposition(mut self) -> Self {
        self.sync_interposition = false;
        self
    }

    /// Disables epoch creation and hand-off accounting at simulated
    /// atomics (the naive-host-atomics baseline of the paper's §6
    /// limitation, kept as the A side of the atomics ablation).
    pub fn without_atomic_interposition(mut self) -> Self {
        self.atomic_interposition = false;
        self
    }

    /// Enables the DRAM+NVM two-memory mode.
    pub fn with_two_memory_mode(mut self) -> Self {
        self.memory_mode = MemoryMode::TwoMemory;
        self
    }

    /// Overrides the measured (local, remote) DRAM latencies.
    pub fn with_measured_dram_ns(mut self, local: f64, remote: f64) -> Self {
        self.measured_dram_ns = Some((local, remote));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_builder() {
        let t = NvmTarget::new(500.0)
            .with_bandwidth_gbps(5.0)
            .with_write_delay_ns(700.0);
        assert_eq!(t.read_latency_ns, 500.0);
        assert_eq!(t.bandwidth_gbps, Some(5.0));
        assert_eq!(t.write_delay_ns, 700.0);
    }

    #[test]
    fn default_write_delay_matches_read() {
        let t = NvmTarget::new(300.0);
        assert_eq!(t.write_delay_ns, 300.0);
        // The PCM-like default is symmetric: pflush charges writes, the
        // epoch model does not — write_latency_ns (the asymmetric-model
        // knob) stays off so stores are never double-charged.
        assert_eq!(t.write_latency_ns, None);
        assert!(!t.is_asymmetric());
    }

    #[test]
    fn optane_preset_is_asymmetric() {
        let t = NvmTarget::optane_dcpmm();
        assert_eq!(t.read_latency_ns, 169.0);
        assert_eq!(t.write_latency_ns, Some(90.0));
        assert_eq!(t.bandwidth_gbps, Some(39.4));
        assert_eq!(t.write_bandwidth_gbps, Some(13.9));
        assert!(t.is_asymmetric());
        // Write-to-WPQ is *faster* than the read path — the asymmetry
        // can go either way and the preset records the measured numbers,
        // not an assumption.
        assert!(t.write_latency_ns.unwrap() < t.read_latency_ns);
    }

    #[test]
    fn write_knobs_are_independent() {
        let t = NvmTarget::new(500.0)
            .with_write_delay_ns(700.0)
            .with_write_latency_ns(900.0)
            .with_write_bandwidth_gbps(2.0);
        assert_eq!(t.write_delay_ns, 700.0);
        assert_eq!(t.write_latency_ns, Some(900.0));
        assert_eq!(t.write_bandwidth_gbps, Some(2.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_latency_rejected() {
        let _ = NvmTarget::new(0.0);
    }

    #[test]
    fn config_defaults_match_paper() {
        let c = QuartzConfig::new(NvmTarget::new(200.0));
        assert_eq!(c.max_epoch, Duration::from_ms(10));
        assert_eq!(c.model, LatencyModelKind::StallBased);
        assert_eq!(c.counter_access, CounterAccess::Rdpmc);
        assert!(c.inject_delays);
        assert_eq!(c.memory_mode, MemoryMode::PmOnly);
    }

    #[test]
    fn with_max_epoch_also_sets_monitor() {
        let c = QuartzConfig::new(NvmTarget::new(200.0)).with_max_epoch(Duration::from_ms(1));
        assert_eq!(c.monitor_period, Duration::from_us(500));
    }
}
