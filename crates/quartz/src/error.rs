//! Emulator error types.

use std::error::Error;
use std::fmt;

use quartz_platform::Architecture;
use quartz_platform::PlatformError;

/// Errors raised by the Quartz emulator library.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum QuartzError {
    /// Two-memory mode needs the local/remote LLC-miss counter split,
    /// which Sandy Bridge does not expose (paper §3.3 requires Ivy
    /// Bridge or Haswell).
    TwoMemoryUnsupported {
        /// The offending family.
        arch: Architecture,
    },
    /// Two-memory mode needs a sibling socket to host virtual NVM.
    NoSiblingSocket,
    /// The requested NVM latency is below the measured DRAM latency the
    /// emulation substrate provides — software delays cannot make memory
    /// *faster*.
    TargetFasterThanSubstrate {
        /// Requested NVM latency (ns).
        requested_ns: f64,
        /// Substrate DRAM latency (ns).
        substrate_ns: f64,
    },
    /// An underlying platform operation failed.
    Platform(PlatformError),
    /// `pmalloc` failed (virtual NVM node out of memory).
    PmallocFailed {
        /// Human-readable cause.
        cause: String,
    },
}

impl fmt::Display for QuartzError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuartzError::TwoMemoryUnsupported { arch } => write!(
                f,
                "two-memory mode requires local/remote miss counters, unavailable on {arch}"
            ),
            QuartzError::NoSiblingSocket => {
                write!(
                    f,
                    "two-memory mode requires a sibling socket for virtual NVM"
                )
            }
            QuartzError::TargetFasterThanSubstrate {
                requested_ns,
                substrate_ns,
            } => write!(
                f,
                "requested NVM latency {requested_ns} ns is below the {substrate_ns} ns substrate"
            ),
            QuartzError::Platform(e) => write!(f, "platform error: {e}"),
            QuartzError::PmallocFailed { cause } => write!(f, "pmalloc failed: {cause}"),
        }
    }
}

impl Error for QuartzError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            QuartzError::Platform(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PlatformError> for QuartzError {
    fn from(e: PlatformError) -> Self {
        QuartzError::Platform(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs = [
            QuartzError::TwoMemoryUnsupported {
                arch: Architecture::SandyBridge,
            },
            QuartzError::NoSiblingSocket,
            QuartzError::TargetFasterThanSubstrate {
                requested_ns: 50.0,
                substrate_ns: 87.0,
            },
            QuartzError::PmallocFailed {
                cause: "oom".into(),
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn platform_error_chains() {
        let e = QuartzError::from(PlatformError::PrivilegeRequired { op: "x" });
        assert!(e.source().is_some());
    }
}
