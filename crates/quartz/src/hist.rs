//! Fixed-bucket log-scaled latency histogram.
//!
//! Tail-latency curves (the `kv_service` experiment) need percentiles
//! over millions of per-request latencies without storing them: a
//! [`LatencyHist`] buckets nanosecond values on a log scale — 32 linear
//! sub-buckets per power-of-two octave, ≤ ~3.2% relative quantization
//! error — in a fixed-size table, so recording is O(1), memory is
//! constant, and two histograms built on different worker threads merge
//! by bucket-wise addition into bit-identical results regardless of
//! merge order. All statistics derive deterministically from the bucket
//! counts (plus exact min/max/sum side-channels), which keeps
//! `BENCH_*.json` output byte-identical at any `--jobs` count.

use quartz_platform::time::Duration;

/// Linear sub-buckets per octave: 2^5 = 32 ⇒ worst-case relative error
/// of one part in 32.
const SUB_BITS: u32 = 5;
const SUBS: usize = 1 << SUB_BITS;
/// Octaves above the exact range; covers values up to 2^44 ns (~4.8 h),
/// far beyond any simulated request latency. Larger values clamp into
/// the top bucket (and are still reported exactly via `max_ns`).
const OCTAVES: usize = 40;
const BUCKETS: usize = SUBS + OCTAVES * SUBS;

/// A mergeable log-scaled histogram of nanosecond latencies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHist {
    counts: Vec<u64>,
    total: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHist {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for a nanosecond value: exact below `SUBS`, then 32
/// linear sub-buckets per octave.
fn bucket_of(ns: u64) -> usize {
    if ns < SUBS as u64 {
        return ns as usize;
    }
    let exp = 63 - ns.leading_zeros(); // ≥ SUB_BITS
    let sub = ((ns >> (exp - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
    let idx = (exp - SUB_BITS + 1) as usize * SUBS + sub;
    idx.min(BUCKETS - 1)
}

/// Representative (midpoint) nanosecond value of bucket `idx` — the
/// value reported for any percentile landing in the bucket.
fn value_of(idx: usize) -> u64 {
    if idx < SUBS {
        return idx as u64;
    }
    let octave = (idx / SUBS - 1) as u32 + SUB_BITS;
    let sub = (idx % SUBS) as u64;
    let base = (1u64 << octave) + (sub << (octave - SUB_BITS));
    base + (1u64 << (octave - SUB_BITS)) / 2
}

impl LatencyHist {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHist {
            counts: vec![0; BUCKETS],
            total: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    /// Records one latency in nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        self.counts[bucket_of(ns)] += 1;
        self.total += 1;
        self.sum_ns += ns as u128;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Records one latency given as a virtual-time duration (truncated
    /// to whole nanoseconds).
    pub fn record(&mut self, d: Duration) {
        self.record_ns(d.as_ps() / 1_000);
    }

    /// Adds every sample of `other` into `self`. Associative and
    /// commutative: any merge tree over per-thread histograms yields
    /// identical counts.
    pub fn merge(&mut self, other: &LatencyHist) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact mean in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.sum_ns as f64 / self.total as f64
    }

    /// Exact smallest recorded value (0 when empty).
    pub fn min_ns(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// Exact largest recorded value.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// The latency at quantile `q` ∈ [0, 1]: the representative value
    /// of the first bucket whose cumulative count reaches `q · total`,
    /// clamped into the exact observed [min, max] range. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return value_of(idx).clamp(self.min_ns, self.max_ns);
            }
        }
        self.max_ns
    }

    /// Median latency in nanoseconds.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th-percentile latency in nanoseconds.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th-percentile latency in nanoseconds.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Renders the summary as a deterministic JSON object:
    /// `{"count":…,"mean_ns":…,"min_ns":…,"p50_ns":…,"p99_ns":…,
    /// "p999_ns":…,"max_ns":…}`. The mean is rounded to 3 decimals so
    /// the text form is stable across platforms.
    pub fn to_json(&self) -> String {
        let mean = (self.mean_ns() * 1_000.0).round() / 1_000.0;
        format!(
            "{{\"count\":{},\"mean_ns\":{},\"min_ns\":{},\"p50_ns\":{},\
             \"p99_ns\":{},\"p999_ns\":{},\"max_ns\":{}}}",
            self.total,
            mean,
            self.min_ns(),
            self.p50(),
            self.p99(),
            self.p999(),
            self.max_ns
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_32_ns() {
        let mut h = LatencyHist::new();
        for ns in 0..32u64 {
            h.record_ns(ns);
        }
        assert_eq!(h.count(), 32);
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.max_ns(), 31);
        assert_eq!(h.quantile(1.0), 31);
    }

    #[test]
    fn quantiles_within_relative_error() {
        let mut h = LatencyHist::new();
        for i in 1..=100_000u64 {
            h.record_ns(i);
        }
        for (q, exact) in [(0.5, 50_000.0), (0.99, 99_000.0), (0.999, 99_900.0)] {
            let got = h.quantile(q) as f64;
            let err = (got - exact).abs() / exact;
            assert!(err < 0.04, "q={q}: got {got}, exact {exact}, err {err}");
        }
        assert_eq!(h.max_ns(), 100_000);
        assert!((h.mean_ns() - 50_000.5).abs() < 1e-9);
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut h = LatencyHist::new();
        let mut x = 1u64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record_ns(x % 5_000_000);
        }
        assert!(h.p50() <= h.p99());
        assert!(h.p99() <= h.p999());
        assert!(h.p999() <= h.max_ns());
        assert!(h.min_ns() <= h.p50());
    }

    #[test]
    fn merge_matches_single_histogram_in_any_order() {
        let mut all = LatencyHist::new();
        let mut parts: Vec<LatencyHist> = (0..4).map(|_| LatencyHist::new()).collect();
        let mut x = 7u64;
        for i in 0..40_000usize {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let ns = x % 10_000_000;
            all.record_ns(ns);
            parts[i % 4].record_ns(ns);
        }
        let mut fwd = LatencyHist::new();
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = LatencyHist::new();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        assert_eq!(fwd, all);
        assert_eq!(rev, all);
        assert_eq!(fwd.to_json(), rev.to_json());
    }

    #[test]
    fn json_shape_is_stable() {
        let mut h = LatencyHist::new();
        h.record_ns(100);
        h.record_ns(200);
        let j = h.to_json();
        assert!(j.starts_with("{\"count\":2,\"mean_ns\":150,"), "{j}");
        for key in ["min_ns", "p50_ns", "p99_ns", "p999_ns", "max_ns"] {
            assert!(j.contains(&format!("\"{key}\":")), "{j}");
        }
    }

    #[test]
    fn huge_values_clamp_into_top_bucket() {
        let mut h = LatencyHist::new();
        h.record_ns(u64::MAX);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max_ns(), u64::MAX);
        // Percentile clamps into the exact observed range.
        assert_eq!(h.p50(), u64::MAX);
    }

    #[test]
    fn record_duration_truncates_to_ns() {
        let mut h = LatencyHist::new();
        h.record(Duration::from_ns(374));
        assert_eq!(h.min_ns(), 374);
        assert_eq!(h.max_ns(), 374);
    }
}
