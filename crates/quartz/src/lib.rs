//! **Quartz** — a lightweight performance emulator for persistent memory
//! software.
//!
//! This crate reproduces the emulator of Volos et al., *"Quartz: A
//! Lightweight Performance Emulator for Persistent Memory Software"*
//! (Middleware 2015), on top of the simulated commodity hardware of
//! [`quartz_platform`] / [`quartz_memsim`] and the deterministic thread
//! engine of [`quartz_threadsim`].
//!
//! Quartz emulates the two performance characteristics of future
//! byte-addressable NVM that dominate end-to-end application performance:
//!
//! * **Bandwidth** — by programming the DRAM thermal-control registers to
//!   throttle channel bandwidth (hardware feature, linear in the 12-bit
//!   register value; paper §2.1 and Fig. 8), and
//! * **Latency** — by *epoch-based delay injection*: at epoch boundaries
//!   the library reads hardware performance counters, estimates the
//!   processor stall time attributable to memory via
//!   [`model::stalls_from_counters`] (Eq. 3), converts it into the number
//!   of serialized memory accesses (capturing memory-level parallelism),
//!   and spins for `Δ = LDM_STALL / DRAM_lat × (NVM_lat − DRAM_lat)`
//!   (Eq. 2; paper §2.2).
//!
//! Epochs close when the monitor signals a thread whose epoch exceeded
//! the **maximum epoch length**, and at inter-thread communication points
//! (mutex release, condvar notify) so that delay accumulated inside a
//! critical section is injected *before* the lock is released and
//! propagates to waiters (paper §2.3, Fig. 4). A **minimum epoch length**
//! bounds the overhead of very frequent synchronization (paper §3.1).
//!
//! The [`Quartz`] runtime also implements the paper's §3.3 extension for
//! systems with *two* memory types (fast volatile DRAM + slower NVM) by
//! mapping virtual NVM onto the sibling socket's DRAM and splitting the
//! measured stall cycles between local and remote accesses with the
//! latency-weighted heuristic, and the persistence API: `pmalloc`/`pfree`
//! ([`Quartz::pmalloc`]), `pflush` (clflush + configurable write delay),
//! and the §6 `clflushopt`/`pcommit` accumulate-and-drain write model.
//!
//! # Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use quartz::{NvmTarget, Quartz, QuartzConfig};
//! use quartz_memsim::{MemSimConfig, MemorySystem};
//! use quartz_platform::{Architecture, Platform, PlatformConfig};
//! use quartz_threadsim::Engine;
//!
//! # fn main() -> Result<(), quartz::QuartzError> {
//! let platform = Platform::new(PlatformConfig::new(Architecture::IvyBridge));
//! let mem = Arc::new(MemorySystem::new(platform, MemSimConfig::default()));
//! let engine = Engine::new(Arc::clone(&mem));
//!
//! // Emulate a 400 ns / 10 GB/s NVM.
//! let config = QuartzConfig::new(NvmTarget::new(400.0).with_bandwidth_gbps(10.0));
//! let quartz = Quartz::new(config, mem)?;
//! quartz.attach(&engine)?;
//!
//! let q = Arc::clone(&quartz);
//! let report = engine.run(move |ctx| {
//!     let buf = q.pmalloc(ctx, 1 << 16).unwrap();
//!     for i in 0..64 {
//!         ctx.load(buf.offset_by(i * 64));
//!     }
//! });
//! assert!(report.end_time.as_ns_f64() > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod calibrate;
pub mod config;
pub mod error;
pub mod hist;
pub mod model;
pub mod pmem;
pub(crate) mod registry;
pub mod runtime;
pub mod stats;

pub use config::{CounterAccess, LatencyModelKind, MemoryMode, NvmTarget, QuartzConfig};
pub use error::QuartzError;
pub use hist::LatencyHist;
pub use runtime::Quartz;
pub use stats::QuartzStats;

#[cfg(test)]
mod tests;
