//! The analytic memory performance model (paper §2 and §3.3).

/// Derives the load-memory stall cycles (`LDM_STALL`) from the three
/// counters of Eq. 3:
///
/// ```text
/// LDM_STALL = L2_stalls × (W × L3_miss) / (L3_hit + W × L3_miss)
/// ```
///
/// where `W` is the ratio of DRAM to L3 latency. `STALLS_L2_PENDING`
/// counts stalls for loads pending past L2 — both L3 hits and DRAM
/// accesses — and this latency-weighted ratio scales out the L3-hit
/// share.
///
/// ```
/// // All misses: every L2-pending stall cycle is a memory stall.
/// assert_eq!(quartz::model::stalls_from_counters(1000.0, 0.0, 50.0, 7.0), 1000.0);
/// // No misses: none of it is.
/// assert_eq!(quartz::model::stalls_from_counters(1000.0, 50.0, 0.0, 7.0), 0.0);
/// ```
pub fn stalls_from_counters(l2_stalls: f64, l3_hits: f64, l3_misses: f64, w: f64) -> f64 {
    let weighted = w * l3_misses;
    let denom = l3_hits + weighted;
    if denom <= 0.0 {
        return 0.0;
    }
    l2_stalls * (weighted / denom)
}

/// Eq. 1 — the *simple* model: every LLC miss is assumed serialized.
///
/// `Δ = M × (NVM_lat − DRAM_lat)`, in nanoseconds. Over-estimates the
/// delay by the memory-level-parallelism factor (Fig. 2); retained for
/// the ablation study.
pub fn delay_simple_ns(misses: u64, dram_lat_ns: f64, nvm_lat_ns: f64) -> f64 {
    (misses as f64 * (nvm_lat_ns - dram_lat_ns)).max(0.0)
}

/// Eq. 2 — the stall-based model:
///
/// `Δ = LDM_STALL / DRAM_lat × (NVM_lat − DRAM_lat)`, in nanoseconds.
///
/// Dividing the stall time by the average DRAM latency yields the number
/// of *serialized* memory accesses, so overlapped (MLP) accesses are
/// charged once.
pub fn delay_stall_based_ns(ldm_stall_ns: f64, dram_lat_ns: f64, nvm_lat_ns: f64) -> f64 {
    if dram_lat_ns <= 0.0 {
        return 0.0;
    }
    (ldm_stall_ns / dram_lat_ns * (nvm_lat_ns - dram_lat_ns)).max(0.0)
}

/// The asymmetric extension of Eq. 2: read- and write-side stalls priced
/// at *different* target latencies:
///
/// ```text
/// Δ = LDM_STALL/DRAM_lat × (NVM_read − DRAM_lat)
///   + SB_STALL/DRAM_lat  × (NVM_write − DRAM_lat)
/// ```
///
/// The read term is the paper's Eq. 2 over load stalls; the write term
/// applies the same serialized-access logic to store-buffer stalls
/// (`RESOURCE_STALLS:SB`), which is where slow posted writes surface —
/// the back-pressure the load-side counters cannot see (cf. Koshiba et
/// al., arXiv 1908.02135). Each term clamps to zero independently, so a
/// WPQ-fast / media-slow-read NVM (Optane) injects only read-side delay.
///
/// With `nvm_write_ns == nvm_read_ns` the sum degenerates *exactly* to
/// [`delay_stall_based_ns`] over the combined stall time, by linearity.
pub fn delay_asymmetric_ns(
    ldm_stall_ns: f64,
    sb_stall_ns: f64,
    dram_lat_ns: f64,
    nvm_read_ns: f64,
    nvm_write_ns: f64,
) -> f64 {
    delay_stall_based_ns(ldm_stall_ns, dram_lat_ns, nvm_read_ns)
        + delay_stall_based_ns(sb_stall_ns, dram_lat_ns, nvm_write_ns)
}

/// The asymmetric analogue of Eq. 1 for the simple-model ablation: every
/// store miss (RFO or streaming store) is assumed serialized and charged
/// the write-latency difference.
pub fn write_delay_simple_ns(store_misses: u64, dram_lat_ns: f64, nvm_write_ns: f64) -> f64 {
    delay_simple_ns(store_misses, dram_lat_ns, nvm_write_ns)
}

/// The §3.3 heuristic splitting total stall time into the share caused by
/// remote-DRAM (virtual NVM) accesses:
///
/// ```text
/// LDM_STALL_rem = LDM_STALL × (M_rem × lat_rem) / (M_loc × lat_loc + M_rem × lat_rem)
/// ```
///
/// Latencies act as weights because a remote access stalls the processor
/// proportionally longer (the paper's 3000 ns worked example).
///
/// ```
/// // The paper's example: 10 local @100ns + 10 remote @200ns of 3000ns
/// // total -> 2000ns attributed to remote.
/// let rem = quartz::model::split_remote_stall_ns(3000.0, 10, 10, 100.0, 200.0);
/// assert!((rem - 2000.0).abs() < 1e-9);
/// ```
pub fn split_remote_stall_ns(
    total_stall_ns: f64,
    m_local: u64,
    m_remote: u64,
    lat_local_ns: f64,
    lat_remote_ns: f64,
) -> f64 {
    let num = m_remote as f64 * lat_remote_ns;
    let denom = m_local as f64 * lat_local_ns + num;
    if denom <= 0.0 {
        return 0.0;
    }
    total_stall_ns * (num / denom)
}

/// The epoch's cycle budget for stall sanity-checking: the cycles the
/// epoch *could* have spent stalled — the measured wall span plus the
/// epoch's own bookkeeping (model evaluation and the four counter
/// reads) — widened by a 9/8 margin that covers the worst per-family
/// counter-fidelity skew (<10%, see `quartz_platform::pmu::fidelity`).
///
/// `LDM_STALL` above this budget is physically impossible (a core cannot
/// stall for longer than the epoch lasted) and indicates counter
/// corruption: wrap glitches, cross-socket TSC skew shrinking the
/// apparent span, or plain bad reads.
pub fn epoch_budget_cycles(span_cycles: u64, epoch_compute_cycles: u64, rdpmc_cycles: u64) -> u64 {
    epoch_budget_cycles_for(span_cycles, epoch_compute_cycles, rdpmc_cycles, 4)
}

/// [`epoch_budget_cycles`] generalized to `n_reads` counter reads per
/// epoch boundary. The symmetric model always budgets four reads (even
/// on Sandy Bridge, which reads three — a deliberate, historical
/// over-budget that must not change); the asymmetric model budgets
/// `4 + store_len()` because it really performs the extra `rdpmc`s.
pub fn epoch_budget_cycles_for(
    span_cycles: u64,
    epoch_compute_cycles: u64,
    rdpmc_cycles: u64,
    n_reads: u64,
) -> u64 {
    (span_cycles
        .saturating_add(epoch_compute_cycles)
        .saturating_add(n_reads.saturating_mul(rdpmc_cycles)))
    .saturating_mul(9)
        / 8
}

/// Clamps a derived `LDM_STALL` to the epoch's cycle budget (Eq. 3 can
/// exceed the epoch under injected TSC skew or wrapped counters).
/// Returns the clamped value and whether clamping fired.
pub fn clamp_stall_cycles(ldm_stall_cycles: f64, budget_cycles: u64) -> (f64, bool) {
    let budget = budget_cycles as f64;
    if ldm_stall_cycles > budget {
        (budget, true)
    } else {
        (ldm_stall_cycles.max(0.0), false)
    }
}

/// The maximum physically meaningful injected delay for an epoch:
/// if *every* cycle of the budget were a memory stall, Eq. 2 would
/// inject `budget × (NVM_lat/DRAM_lat − 1)`. Zero when the target is
/// not slower than the substrate.
pub fn max_delay_ns(budget_ns: f64, dram_lat_ns: f64, nvm_lat_ns: f64) -> f64 {
    if dram_lat_ns <= 0.0 {
        return 0.0;
    }
    (budget_ns * (nvm_lat_ns / dram_lat_ns - 1.0)).max(0.0)
}

/// Clamps an injected delay to [`max_delay_ns`]. Returns the clamped
/// delay and whether clamping fired.
pub fn clamp_delay_ns(
    delay_ns: f64,
    budget_ns: f64,
    dram_lat_ns: f64,
    nvm_lat_ns: f64,
) -> (f64, bool) {
    let cap = max_delay_ns(budget_ns, dram_lat_ns, nvm_lat_ns);
    if delay_ns > cap {
        (cap, true)
    } else {
        (delay_ns.max(0.0), false)
    }
}

/// Maps a target bandwidth to the 12-bit thermal-register value, using
/// the measured peak bandwidth (linear relationship, Fig. 8). Values are
/// clamped to the register range; targets above peak leave the register
/// fully open.
///
/// ```
/// // Half the peak -> roughly half the register range.
/// let v = quartz::model::throttle_register_for(19.2, 38.4);
/// assert!((v as f64 - 0xFFF as f64 / 2.0).abs() <= 1.0);
/// assert_eq!(quartz::model::throttle_register_for(100.0, 38.4), 0xFFF);
/// ```
pub fn throttle_register_for(target_gbps: f64, peak_gbps: f64) -> u32 {
    assert!(peak_gbps > 0.0, "peak bandwidth must be positive");
    if target_gbps >= peak_gbps {
        return 0xFFF;
    }
    let frac = (target_gbps / peak_gbps).max(0.0);
    ((frac * 0xFFF as f64).round() as u32).clamp(1, 0xFFF)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq3_mixed_hits_and_misses() {
        // W=7, 70 hits, 10 misses: weighted misses = 70 -> half the
        // stalls are memory stalls.
        let s = stalls_from_counters(1000.0, 70.0, 10.0, 7.0);
        assert!((s - 500.0).abs() < 1e-9);
    }

    #[test]
    fn eq3_zero_activity() {
        assert_eq!(stalls_from_counters(0.0, 0.0, 0.0, 7.0), 0.0);
    }

    #[test]
    fn eq1_scales_with_misses() {
        assert_eq!(delay_simple_ns(10, 100.0, 300.0), 2000.0);
        assert_eq!(delay_simple_ns(0, 100.0, 300.0), 0.0);
        // NVM faster than DRAM clamps to zero, never negative.
        assert_eq!(delay_simple_ns(10, 100.0, 50.0), 0.0);
    }

    #[test]
    fn eq2_counts_serialized_accesses() {
        // 1000 ns of stalls at 100 ns/access = 10 serialized accesses;
        // target 300 ns -> inject 10 * 200 = 2000 ns.
        assert!((delay_stall_based_ns(1000.0, 100.0, 300.0) - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn eq2_with_mlp_charges_once() {
        // 4 parallel accesses stall only ~one latency: 100 ns of stalls,
        // not 400 -> delay is 1x the difference, not 4x (Fig. 2).
        let d = delay_stall_based_ns(100.0, 100.0, 300.0);
        assert!((d - 200.0).abs() < 1e-9);
        let simple = delay_simple_ns(4, 100.0, 300.0);
        assert!(simple > 3.0 * d, "Eq. 1 over-injects under MLP");
    }

    #[test]
    fn asymmetric_delay_prices_each_side_at_its_latency() {
        // Hand-computed micro-trace: 1000 ns of load stalls and 500 ns of
        // store-buffer stalls over 100 ns DRAM, targeting 300 ns reads
        // and 500 ns writes.
        //   read term:  1000/100 x (300-100) = 2000 ns
        //   write term:  500/100 x (500-100) = 2000 ns
        let d = delay_asymmetric_ns(1000.0, 500.0, 100.0, 300.0, 500.0);
        assert!((d - 4000.0).abs() < 1e-9, "{d}");
        // No store stalls -> pure Eq. 2.
        let d = delay_asymmetric_ns(1000.0, 0.0, 100.0, 300.0, 500.0);
        assert!((d - 2000.0).abs() < 1e-9);
        // Optane-shaped: writes faster than DRAM clamp their term to
        // zero without bleeding into the read term.
        let d = delay_asymmetric_ns(1000.0, 800.0, 100.0, 169.0, 90.0);
        assert!((d - delay_stall_based_ns(1000.0, 100.0, 169.0)).abs() < 1e-9);
    }

    #[test]
    fn asymmetric_delay_degenerates_to_symmetric() {
        // Equal read/write latency must reproduce Eq. 2 over the summed
        // stall time exactly (linearity) — the property the proptest in
        // tests/proptests.rs fuzzes.
        for (r, s) in [(1000.0, 500.0), (0.0, 750.0), (123.4, 567.8)] {
            let asym = delay_asymmetric_ns(r, s, 100.0, 300.0, 300.0);
            let sym = delay_stall_based_ns(r + s, 100.0, 300.0);
            assert!((asym - sym).abs() < 1e-9, "{asym} vs {sym}");
        }
    }

    #[test]
    fn simple_write_term_counts_store_misses() {
        // 10 serialized store misses, 100 -> 500 ns: 4000 ns.
        assert_eq!(write_delay_simple_ns(10, 100.0, 500.0), 4000.0);
        // Faster-than-DRAM writes clamp to zero.
        assert_eq!(write_delay_simple_ns(10, 100.0, 90.0), 0.0);
    }

    #[test]
    fn generalized_budget_matches_legacy_at_four_reads() {
        for span in [0u64, 1_000, 100_000, u64::MAX] {
            assert_eq!(
                epoch_budget_cycles(span, 2_000, 500),
                epoch_budget_cycles_for(span, 2_000, 500, 4)
            );
        }
        // Asymmetric IVB/HSW epochs read 4 + 3 counters.
        assert_eq!(
            epoch_budget_cycles_for(100_000, 2_000, 500, 7),
            (100_000u64 + 2_000 + 7 * 500) * 9 / 8
        );
    }

    #[test]
    fn split_edge_cases() {
        assert_eq!(split_remote_stall_ns(3000.0, 10, 0, 100.0, 200.0), 0.0);
        let all_remote = split_remote_stall_ns(3000.0, 0, 10, 100.0, 200.0);
        assert!((all_remote - 3000.0).abs() < 1e-9);
        assert_eq!(split_remote_stall_ns(0.0, 5, 5, 100.0, 200.0), 0.0);
    }

    #[test]
    fn split_is_monotone_in_remote_count() {
        let mut prev = 0.0;
        for m_rem in 1..20 {
            let s = split_remote_stall_ns(1000.0, 10, m_rem, 100.0, 200.0);
            assert!(s > prev);
            prev = s;
        }
    }

    #[test]
    fn epoch_budget_carries_fidelity_margin() {
        // span 100k + compute 2k + 4x500 rdpmc = 104k, x9/8 = 117k.
        assert_eq!(epoch_budget_cycles(100_000, 2_000, 500), 117_000);
        // Saturates instead of overflowing on absurd spans.
        assert!(epoch_budget_cycles(u64::MAX, 2_000, 500) > 0);
    }

    #[test]
    fn stall_clamp_fires_only_over_budget() {
        let budget = epoch_budget_cycles(100_000, 2_000, 500);
        let (v, clamped) = clamp_stall_cycles(50_000.0, budget);
        assert_eq!((v, clamped), (50_000.0, false));
        // Over budget: a wrapped counter claiming ~2^48 stall cycles.
        let (v, clamped) = clamp_stall_cycles(2.8e14, budget);
        assert_eq!((v, clamped), (budget as f64, true));
        // Negative garbage clamps up to zero without flagging.
        assert_eq!(clamp_stall_cycles(-5.0, budget), (0.0, false));
    }

    #[test]
    fn delay_clamp_bounds_by_latency_ratio() {
        // Budget 1000 ns, 100 -> 300 ns: at most 2000 ns of delay.
        assert_eq!(max_delay_ns(1000.0, 100.0, 300.0), 2000.0);
        let (d, c) = clamp_delay_ns(1500.0, 1000.0, 100.0, 300.0);
        assert_eq!((d, c), (1500.0, false));
        let (d, c) = clamp_delay_ns(1e9, 1000.0, 100.0, 300.0);
        assert_eq!((d, c), (2000.0, true));
        // Target not slower than substrate: any positive delay clamps
        // to zero.
        assert_eq!(max_delay_ns(1000.0, 100.0, 100.0), 0.0);
        assert_eq!(clamp_delay_ns(50.0, 1000.0, 100.0, 50.0), (0.0, true));
    }

    #[test]
    fn throttle_register_linearity() {
        let peak = 38.4;
        for i in 1..=10 {
            let target = peak * i as f64 / 10.0;
            let v = throttle_register_for(target, peak);
            let achieved = v as f64 / 0xFFF as f64 * peak;
            assert!(
                (achieved - target).abs() / target < 0.01,
                "target {target} -> register {v} -> {achieved}"
            );
        }
    }

    #[test]
    fn throttle_register_never_zero() {
        assert_eq!(throttle_register_for(0.0, 38.4), 1);
    }
}
