//! The persistent-memory API: `pmalloc`/`pfree`, `pflush`, and the
//! `clflushopt`/`pcommit` extension.
//!
//! `pflush` is the paper's §3.1 write-emulation primitive: it writes back
//! a cache line (`clflush`) and then injects a configurable delay for the
//! slower NVM write. It is pessimistic — every write waits for the
//! previous one. The `pflush_opt`/`pcommit` pair implements the §6
//! "opportunities" design: flushes accumulate expected completion times
//! and only the `pcommit` barrier stalls, discounting flushes that have
//! already completed — which lets independent writes proceed in parallel.

use quartz_memsim::Addr;
use quartz_platform::time::{Duration, SimTime};
use quartz_threadsim::ThreadCtx;

use crate::error::QuartzError;
use crate::runtime::Quartz;

impl Quartz {
    /// Allocates persistent memory. In two-memory mode this maps onto the
    /// sibling socket's DRAM (`numa_alloc_onnode`, paper §3.3); in
    /// PM-only mode all memory is persistent and the allocation is
    /// node-local.
    ///
    /// # Errors
    ///
    /// Fails when the virtual NVM node is out of memory.
    pub fn pmalloc(&self, ctx: &mut ThreadCtx, bytes: u64) -> Result<Addr, QuartzError> {
        ctx.try_alloc_on(self.nvm_node(), bytes)
            .map_err(|e| QuartzError::PmallocFailed {
                cause: e.to_string(),
            })
    }

    /// Frees persistent memory.
    ///
    /// # Errors
    ///
    /// Fails on an invalid free.
    pub fn pfree(&self, ctx: &mut ThreadCtx, addr: Addr) -> Result<(), QuartzError> {
        ctx.free(addr).map_err(|e| QuartzError::PmallocFailed {
            cause: e.to_string(),
        })
    }

    /// Flushes a cache line to persistent memory and stalls for the
    /// configured NVM write delay. Serializes with the previous write —
    /// the pessimistic model of §3.1.
    pub fn pflush(&self, ctx: &mut ThreadCtx, addr: Addr) {
        ctx.flush(addr);
        let delay = Duration::from_ns_f64(self.config().target.write_delay_ns);
        ctx.spin(delay);
        if let Some(pt) = self.state.lock().get_mut(&ctx.thread_id().0) {
            pt.stats.pflush_delay += delay;
            pt.stats.pflushes += 1;
        }
    }

    /// `clflushopt`-style flush: writes the line back asynchronously and
    /// records its expected NVM completion time; returns immediately.
    /// Pair with [`Quartz::pcommit`].
    pub fn pflush_opt(&self, ctx: &mut ThreadCtx, addr: Addr) {
        let dram_done = ctx.flush_opt(addr);
        let nvm_done = dram_done + Duration::from_ns_f64(self.config().target.write_delay_ns);
        if let Some(pt) = self.state.lock().get_mut(&ctx.thread_id().0) {
            pt.pending_flushes.push(nvm_done);
            pt.stats.pflushes += 1;
        }
    }

    /// `pcommit`-style barrier: stalls until every outstanding
    /// [`Quartz::pflush_opt`] has reached NVM. Flushes that completed
    /// while the program kept executing cost nothing — independent writes
    /// overlap (paper §6).
    pub fn pcommit(&self, ctx: &mut ThreadCtx) {
        let latest: Option<SimTime> = {
            let mut st = self.state.lock();
            st.get_mut(&ctx.thread_id().0)
                .map(|pt| pt.pending_flushes.drain(..).max())
                .unwrap_or(None)
        };
        if let Some(done) = latest {
            let wait = done.saturating_duration_since(ctx.now());
            if !wait.is_zero() {
                ctx.spin(wait);
                if let Some(pt) = self.state.lock().get_mut(&ctx.thread_id().0) {
                    pt.stats.pflush_delay += wait;
                }
            }
        }
    }

    /// Number of flushes awaiting the next [`Quartz::pcommit`] on this
    /// thread.
    pub fn pending_flushes(&self, ctx: &ThreadCtx) -> usize {
        self.state
            .lock()
            .get(&ctx.thread_id().0)
            .map(|pt| pt.pending_flushes.len())
            .unwrap_or(0)
    }
}
