//! The persistent-memory API: `pmalloc`/`pfree`, `pflush`, and the
//! `clflushopt`/`pcommit` extension.
//!
//! `pflush` is the paper's §3.1 write-emulation primitive: it writes back
//! a cache line (`clflush`) and then injects a configurable delay for the
//! slower NVM write. It is pessimistic — every write waits for the
//! previous one. The `pflush_opt`/`pcommit` pair implements the §6
//! "opportunities" design: flushes accumulate expected completion times
//! and only the `pcommit` barrier stalls, discounting flushes that have
//! already completed — which lets independent writes proceed in parallel.
//!
//! Each primitive goes through the calling thread's `crate::registry`
//! slot and acquires the slot's owner lock **at most once** per call; the
//! seed's global `Mutex<HashMap>` needed up to two acquisitions (plus a
//! hash each) and could lose `pflush_delay` attribution when the second
//! lookup raced a lookup failure after `ctx.spin`.

use quartz_memsim::Addr;
use quartz_platform::time::{Duration, SimTime};
use quartz_threadsim::ThreadCtx;

use crate::error::QuartzError;
use crate::runtime::Quartz;

/// Inserts `(line, done)` into the pending-flush set, updating the
/// entry in place when the line is already pending and keeping the
/// *later* expected completion — which preserves `pcommit`'s
/// max-completion semantics exactly. Because every insert goes through
/// this merge, the set is per-line unique by construction: repeated
/// `pflush_opt` of the same line within one commit window can no longer
/// grow the vec unboundedly.
fn merge_pending(pending: &mut Vec<(u64, SimTime)>, line: u64, done: SimTime) {
    if let Some(slot) = pending.iter_mut().find(|(l, _)| *l == line) {
        if done > slot.1 {
            slot.1 = done;
        }
    } else {
        pending.push((line, done));
    }
}

impl Quartz {
    /// Allocates persistent memory. In two-memory mode this maps onto the
    /// sibling socket's DRAM (`numa_alloc_onnode`, paper §3.3); in
    /// PM-only mode all memory is persistent and the allocation is
    /// node-local.
    ///
    /// # Errors
    ///
    /// Fails when the virtual NVM node is out of memory.
    pub fn pmalloc(&self, ctx: &mut ThreadCtx, bytes: u64) -> Result<Addr, QuartzError> {
        ctx.try_alloc_on(self.nvm_node(), bytes)
            .map_err(|e| QuartzError::PmallocFailed {
                cause: e.to_string(),
            })
    }

    /// Frees persistent memory.
    ///
    /// # Errors
    ///
    /// Fails on an invalid free.
    pub fn pfree(&self, ctx: &mut ThreadCtx, addr: Addr) -> Result<(), QuartzError> {
        ctx.free(addr).map_err(|e| QuartzError::PmallocFailed {
            cause: e.to_string(),
        })
    }

    /// Flushes a cache line to persistent memory and stalls for the
    /// configured NVM write delay. Serializes with the previous write —
    /// the pessimistic model of §3.1.
    ///
    /// Accounting is attributed *before* the spin under a single slot-lock
    /// acquisition, so a monitor signal delivered during the spin cannot
    /// observe a flush whose delay was charged but not recorded.
    /// When the target sets `write_bandwidth_gbps`, the flushed line also
    /// occupies a write-pending-queue drain slot paced at that bandwidth:
    /// back-to-back flushes faster than the NVM can absorb them wait for
    /// the queue instead of just the fixed per-line delay. With the knob
    /// unset the pacing path never runs and `pflush` behaves exactly as
    /// before.
    pub fn pflush(&self, ctx: &mut ThreadCtx, addr: Addr) {
        let t0 = ctx.now();
        ctx.flush(addr);
        let mut delay = Duration::from_ns_f64(self.config().target.write_delay_ns);
        if let Some(slot) = self.slot_of(ctx) {
            let mut owner = slot.lock_owner();
            if let Some(bw) = self.config().target.write_bandwidth_gbps {
                // One cache line takes 64/bw ns to drain; the queue
                // serializes drains, so this flush completes when the
                // *later* of its fixed delay and its drain slot is done.
                let drain = Duration::from_ns_f64(64.0 / bw);
                let now = ctx.now();
                let drained_at = owner.wpq_next_free.max(now) + drain;
                owner.wpq_next_free = drained_at;
                delay = delay.max(drained_at.saturating_duration_since(now));
            }
            owner.stats.pflush_delay += delay;
            owner.stats.pflushes += 1;
        }
        ctx.spin(delay);
        if let Some(obs) = self.mem.persist_observer() {
            obs.nvm_flush(addr.line(), t0, ctx.now());
        }
    }

    /// `clflushopt`-style flush: writes the line back asynchronously and
    /// records its expected NVM completion time; returns immediately.
    /// Pair with [`Quartz::pcommit`].
    pub fn pflush_opt(&self, ctx: &mut ThreadCtx, addr: Addr) {
        let dram_done = ctx.flush_opt(addr);
        let nvm_done = dram_done + Duration::from_ns_f64(self.config().target.write_delay_ns);
        if let Some(slot) = self.slot_of(ctx) {
            let mut owner = slot.lock_owner();
            merge_pending(&mut owner.pending_flushes, addr.line(), nvm_done);
            owner.stats.pflushes += 1;
        }
        if let Some(obs) = self.mem.persist_observer() {
            obs.nvm_flush_opt(addr.line(), ctx.now(), nvm_done);
        }
    }

    /// `pcommit`-style barrier: stalls until every outstanding
    /// [`Quartz::pflush_opt`] has reached NVM. Flushes that completed
    /// while the program kept executing cost nothing — independent writes
    /// overlap (paper §6).
    ///
    /// Drains the pending set, computes the residual wait, and attributes
    /// it to `pflush_delay` in **one** slot-lock acquisition before
    /// spinning; the seed re-looked-up the thread after the spin and
    /// silently dropped the attribution if that second lookup failed.
    pub fn pcommit(&self, ctx: &mut ThreadCtx) {
        let Some(slot) = self.slot_of(ctx) else {
            return;
        };
        let wait = {
            let mut owner = slot.lock_owner();
            let latest = owner.pending_flushes.drain(..).map(|(_, done)| done).max();
            let wait = latest
                .map(|done| done.saturating_duration_since(ctx.now()))
                .unwrap_or(Duration::ZERO);
            if !wait.is_zero() {
                owner.stats.pflush_delay += wait;
            }
            wait
        };
        let t0 = ctx.now();
        if !wait.is_zero() {
            ctx.spin(wait);
        }
        if let Some(obs) = self.mem.persist_observer() {
            obs.nvm_commit(t0, ctx.now());
        }
    }

    /// Number of *distinct cache lines* awaiting the next
    /// [`Quartz::pcommit`] on this thread (repeated `pflush_opt` of one
    /// line counts once).
    pub fn pending_flushes(&self, ctx: &ThreadCtx) -> usize {
        self.slot_of(ctx)
            .map(|slot| slot.lock_owner().pending_flushes.len())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_pending_dedupes_by_line_keeping_max_completion() {
        let mut pending = Vec::new();
        merge_pending(&mut pending, 7, SimTime::from_ns(100));
        merge_pending(&mut pending, 9, SimTime::from_ns(50));
        // Re-flush of line 7 with a *later* completion updates in place.
        merge_pending(&mut pending, 7, SimTime::from_ns(300));
        // Re-flush with an *earlier* completion must not shrink the wait.
        merge_pending(&mut pending, 7, SimTime::from_ns(200));
        assert_eq!(
            pending,
            vec![(7, SimTime::from_ns(300)), (9, SimTime::from_ns(50))]
        );
        // pcommit's max over the set is unchanged by the dedupe.
        let max = pending.iter().map(|&(_, d)| d).max().unwrap();
        assert_eq!(max, SimTime::from_ns(300));
    }
}
