//! The persistent-memory API: `pmalloc`/`pfree`, `pflush`, and the
//! `clflushopt`/`pcommit` extension.
//!
//! `pflush` is the paper's §3.1 write-emulation primitive: it writes back
//! a cache line (`clflush`) and then injects a configurable delay for the
//! slower NVM write. It is pessimistic — every write waits for the
//! previous one. The `pflush_opt`/`pcommit` pair implements the §6
//! "opportunities" design: flushes accumulate expected completion times
//! and only the `pcommit` barrier stalls, discounting flushes that have
//! already completed — which lets independent writes proceed in parallel.
//!
//! Each primitive goes through the calling thread's `crate::registry`
//! slot and acquires the slot's owner lock **at most once** per call; the
//! seed's global `Mutex<HashMap>` needed up to two acquisitions (plus a
//! hash each) and could lose `pflush_delay` attribution when the second
//! lookup raced a lookup failure after `ctx.spin`.

use quartz_memsim::Addr;
use quartz_platform::time::Duration;
use quartz_threadsim::ThreadCtx;

use crate::error::QuartzError;
use crate::runtime::Quartz;

impl Quartz {
    /// Allocates persistent memory. In two-memory mode this maps onto the
    /// sibling socket's DRAM (`numa_alloc_onnode`, paper §3.3); in
    /// PM-only mode all memory is persistent and the allocation is
    /// node-local.
    ///
    /// # Errors
    ///
    /// Fails when the virtual NVM node is out of memory.
    pub fn pmalloc(&self, ctx: &mut ThreadCtx, bytes: u64) -> Result<Addr, QuartzError> {
        ctx.try_alloc_on(self.nvm_node(), bytes)
            .map_err(|e| QuartzError::PmallocFailed {
                cause: e.to_string(),
            })
    }

    /// Frees persistent memory.
    ///
    /// # Errors
    ///
    /// Fails on an invalid free.
    pub fn pfree(&self, ctx: &mut ThreadCtx, addr: Addr) -> Result<(), QuartzError> {
        ctx.free(addr).map_err(|e| QuartzError::PmallocFailed {
            cause: e.to_string(),
        })
    }

    /// Flushes a cache line to persistent memory and stalls for the
    /// configured NVM write delay. Serializes with the previous write —
    /// the pessimistic model of §3.1.
    ///
    /// Accounting is attributed *before* the spin under a single slot-lock
    /// acquisition, so a monitor signal delivered during the spin cannot
    /// observe a flush whose delay was charged but not recorded.
    pub fn pflush(&self, ctx: &mut ThreadCtx, addr: Addr) {
        ctx.flush(addr);
        let delay = Duration::from_ns_f64(self.config().target.write_delay_ns);
        if let Some(slot) = self.slot_of(ctx) {
            let mut owner = slot.lock_owner();
            owner.stats.pflush_delay += delay;
            owner.stats.pflushes += 1;
        }
        ctx.spin(delay);
    }

    /// `clflushopt`-style flush: writes the line back asynchronously and
    /// records its expected NVM completion time; returns immediately.
    /// Pair with [`Quartz::pcommit`].
    pub fn pflush_opt(&self, ctx: &mut ThreadCtx, addr: Addr) {
        let dram_done = ctx.flush_opt(addr);
        let nvm_done = dram_done + Duration::from_ns_f64(self.config().target.write_delay_ns);
        if let Some(slot) = self.slot_of(ctx) {
            let mut owner = slot.lock_owner();
            owner.pending_flushes.push(nvm_done);
            owner.stats.pflushes += 1;
        }
    }

    /// `pcommit`-style barrier: stalls until every outstanding
    /// [`Quartz::pflush_opt`] has reached NVM. Flushes that completed
    /// while the program kept executing cost nothing — independent writes
    /// overlap (paper §6).
    ///
    /// Drains the pending set, computes the residual wait, and attributes
    /// it to `pflush_delay` in **one** slot-lock acquisition before
    /// spinning; the seed re-looked-up the thread after the spin and
    /// silently dropped the attribution if that second lookup failed.
    pub fn pcommit(&self, ctx: &mut ThreadCtx) {
        let Some(slot) = self.slot_of(ctx) else {
            return;
        };
        let wait = {
            let mut owner = slot.lock_owner();
            let latest = owner.pending_flushes.drain(..).max();
            let wait = latest
                .map(|done| done.saturating_duration_since(ctx.now()))
                .unwrap_or(Duration::ZERO);
            if !wait.is_zero() {
                owner.stats.pflush_delay += wait;
            }
            wait
        };
        if !wait.is_zero() {
            ctx.spin(wait);
        }
    }

    /// Number of flushes awaiting the next [`Quartz::pcommit`] on this
    /// thread.
    pub fn pending_flushes(&self, ctx: &ThreadCtx) -> usize {
        self.slot_of(ctx)
            .map(|slot| slot.lock_owner().pending_flushes.len())
            .unwrap_or(0)
    }
}
