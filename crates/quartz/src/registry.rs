//! Sharded per-thread emulator state.
//!
//! The seed kept every thread's epoch state in one global
//! `Mutex<HashMap<usize, PerThread>>`, acquired two to four times per
//! interposition event and held by the monitor while it scanned all
//! live threads — the exact serialization the paper's minimum-epoch
//! knob exists to avoid (§3.2: per-lock-release work must stay cheap).
//! Worse, `end_epoch` was check-then-act across two acquisitions, so a
//! concurrent close in the window between them could charge the same
//! counter delta twice.
//!
//! This module replaces it with a slot-per-thread registry:
//!
//! * **Registration** hands each thread a fixed slot from an atomic
//!   counter; slots live in a `Vec` indexed by the engine's dense
//!   [`ThreadId`](quartz_threadsim::ThreadId) values behind a `RwLock`
//!   taken for writing only on growth.
//! * **Owner-only state** (`snap`, stats, pending flushes) sits behind
//!   each slot's own fine-grained mutex, acquired **once** per event.
//! * **Monitor-readable state** (`epoch_start`) is an atomic timestamp:
//!   the monitor's age scan takes no per-thread lock at all.
//!
//! Lock-ordering rules (see DESIGN.md "Sharded per-thread state"):
//!
//! 1. the registry's `RwLock` is always taken before any slot lock and
//!    released before blocking operations;
//! 2. at most one slot lock is held at a time (aggregation iterates
//!    slots one by one);
//! 3. slot locks are never taken from monitor/timer callbacks — those
//!    read only the atomic fields.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Mutex, MutexGuard, RwLock};
use quartz_platform::pmu::bank::StandardCounters;
use quartz_platform::time::SimTime;

use crate::runtime::Snap;
use crate::stats::ThreadStats;

/// State only ever mutated by the owning thread (under the slot lock).
pub(crate) struct SlotOwner {
    /// The performance-counter bank programmed at registration.
    pub counters: StandardCounters,
    /// Counter snapshot at the current epoch's start.
    pub snap: Snap,
    /// Per-thread accounting.
    pub stats: ThreadStats,
    /// Pending `clflushopt` NVM completions, drained by `pcommit`:
    /// `(cache line, expected NVM completion time)`. Keyed by line so a
    /// repeated `pflush_opt` of the same line within one window updates
    /// in place instead of growing the vec unboundedly; `pcommit` keeps
    /// the max completion time either way.
    pub pending_flushes: Vec<(u64, SimTime)>,
    /// Instant this thread's NVM write-pending queue next has a free
    /// drain slot, for `pflush` pacing at the target's write bandwidth.
    /// Stays at `ZERO` (and the pacing path never runs) unless
    /// `write_bandwidth_gbps` is configured.
    pub wpq_next_free: SimTime,
}

/// One thread's emulator state: atomics the monitor may read without
/// synchronization, plus the owner-only interior behind a per-slot lock.
pub(crate) struct ThreadSlot {
    /// Slot index handed out by the registration counter.
    pub slot: u64,
    /// Epoch start as picoseconds since time zero. Written by the owner
    /// at each epoch boundary (`Release`), read by the monitor's age
    /// scan (`Acquire`) with no lock.
    epoch_start_ps: AtomicU64,
    /// Host-side nanoseconds spent *waiting* for `owner` (contention).
    lock_wait_ns: AtomicU64,
    /// Number of `owner` acquisitions (interposition events that touched
    /// shared state).
    lock_acquisitions: AtomicU64,
    owner: Mutex<SlotOwner>,
}

impl ThreadSlot {
    /// The current epoch's start instant (lock-free).
    pub fn epoch_start(&self) -> SimTime {
        SimTime::from_ps(self.epoch_start_ps.load(Ordering::Acquire))
    }

    /// Opens a new epoch at `at` (lock-free for readers).
    pub fn set_epoch_start(&self, at: SimTime) {
        self.epoch_start_ps.store(at.as_ps(), Ordering::Release);
    }

    /// Acquires the owner-state lock, accounting host-side wait time on
    /// contention. This is the **only** way hot-path code touches shared
    /// per-thread state, which keeps it to one acquisition per event.
    pub fn lock_owner(&self) -> MutexGuard<'_, SlotOwner> {
        self.lock_acquisitions.fetch_add(1, Ordering::Relaxed);
        if let Some(g) = self.owner.try_lock() {
            return g;
        }
        let t0 = Instant::now();
        let g = self.owner.lock();
        self.lock_wait_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        g
    }

    /// Non-blocking owner-state acquisition. Used by the failure reaper
    /// (a slot whose owner lock is still held belongs to a detached hung
    /// thread and must not be blocked on) and by tests (the
    /// race-regression midpoint probe); hot-path code always goes
    /// through [`ThreadSlot::lock_owner`] for the wait accounting.
    pub fn try_lock_owner(&self) -> Option<MutexGuard<'_, SlotOwner>> {
        self.owner.try_lock()
    }

    /// Host nanoseconds spent waiting on this slot's lock so far.
    pub fn lock_wait_ns(&self) -> u64 {
        self.lock_wait_ns.load(Ordering::Relaxed)
    }

    /// Owner-lock acquisitions so far.
    pub fn lock_acquisitions(&self) -> u64 {
        self.lock_acquisitions.load(Ordering::Relaxed)
    }
}

/// The registry of per-thread slots.
///
/// Indexed by the engine's dense thread ids; the `RwLock` is write-held
/// only while the vector grows at registration. Steady-state lookups are
/// a read-lock (no writer present) plus an index.
pub(crate) struct SlotRegistry {
    slots: RwLock<Vec<Option<Arc<ThreadSlot>>>>,
    next_slot: AtomicU64,
}

impl SlotRegistry {
    /// An empty registry pre-sized for `capacity` threads.
    pub fn with_capacity(capacity: usize) -> Self {
        SlotRegistry {
            slots: RwLock::new(Vec::with_capacity(capacity)),
            next_slot: AtomicU64::new(0),
        }
    }

    /// Registers thread `tid`, claiming the next slot index. Returns the
    /// slot handle the hooks and the persistence API thread through the
    /// hot path.
    pub fn register(
        &self,
        tid: usize,
        counters: StandardCounters,
        snap: Snap,
        epoch_start: SimTime,
    ) -> Arc<ThreadSlot> {
        let slot_index = self.next_slot.fetch_add(1, Ordering::Relaxed);
        let slot = Arc::new(ThreadSlot {
            slot: slot_index,
            epoch_start_ps: AtomicU64::new(epoch_start.as_ps()),
            lock_wait_ns: AtomicU64::new(0),
            lock_acquisitions: AtomicU64::new(0),
            owner: Mutex::new(SlotOwner {
                counters,
                snap,
                stats: ThreadStats::default(),
                pending_flushes: Vec::new(),
                wpq_next_free: SimTime::ZERO,
            }),
        });
        let mut slots = self.slots.write();
        if slots.len() <= tid {
            slots.resize_with(tid + 1, || None);
        }
        slots[tid] = Some(Arc::clone(&slot));
        slot
    }

    /// The slot of thread `tid`, if registered.
    pub fn get(&self, tid: usize) -> Option<Arc<ThreadSlot>> {
        self.slots.read().get(tid).and_then(Clone::clone)
    }

    /// Threads registered so far (the atomic registration counter).
    pub fn registered(&self) -> u64 {
        self.next_slot.load(Ordering::Relaxed)
    }

    /// Snapshot of all live slot handles, for aggregation and the
    /// monitor's lock-free age scan. The read guard is dropped before
    /// the caller touches any slot lock (ordering rule 1).
    pub fn snapshot(&self) -> Vec<Arc<ThreadSlot>> {
        self.slots.read().iter().flatten().cloned().collect()
    }

    /// Drains **every** registered slot, returning the reaped handles
    /// for post-mortem inspection. Called by the failure reaper after a
    /// contained [`SimFailure`](quartz_threadsim::SimFailure): the
    /// failed run's per-thread state must not leak into the aggregates
    /// of subsequent runs sharing this runtime. The registration
    /// counter is *not* reset — slot indices stay process-unique.
    ///
    /// Lock ordering: takes only the registry write lock and releases
    /// it before the caller touches any slot lock (rule 1); callers
    /// must use [`ThreadSlot::try_lock_owner`] on the returned handles
    /// because a detached hung thread may still hold one.
    pub fn reap_all(&self) -> Vec<Arc<ThreadSlot>> {
        let mut slots = self.slots.write();
        slots.drain(..).flatten().collect()
    }

    /// Epoch starts of the given thread ids, read without any per-thread
    /// lock. Missing/unregistered ids yield `None`.
    pub fn epoch_starts(&self, tids: &[usize]) -> Vec<Option<SimTime>> {
        let slots = self.slots.read();
        tids.iter()
            .map(|&tid| {
                slots
                    .get(tid)
                    .and_then(|s| s.as_ref())
                    .map(|s| s.epoch_start())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quartz_platform::time::Duration;

    fn dummy_counters() -> StandardCounters {
        // The counter bank layout is opaque here; registry tests only
        // need *a* value to store. Use the platform to mint one.
        use quartz_platform::{Architecture, CoreId, Platform, PlatformConfig};
        let p = Platform::new(PlatformConfig::new(Architecture::IvyBridge));
        p.kernel_module().program_standard_counters(CoreId(0).0)
    }

    #[test]
    fn register_and_lookup() {
        let reg = SlotRegistry::with_capacity(4);
        assert!(reg.get(0).is_none());
        let s = reg.register(2, dummy_counters(), Snap::default(), SimTime::ZERO);
        assert_eq!(s.slot, 0);
        assert_eq!(reg.registered(), 1);
        assert!(reg.get(2).is_some());
        assert!(reg.get(1).is_none());
        let s2 = reg.register(0, dummy_counters(), Snap::default(), SimTime::ZERO);
        assert_eq!(s2.slot, 1);
        assert_eq!(reg.snapshot().len(), 2);
    }

    #[test]
    fn reap_all_drains_slots_but_keeps_counter() {
        let reg = SlotRegistry::with_capacity(4);
        reg.register(0, dummy_counters(), Snap::default(), SimTime::ZERO);
        reg.register(1, dummy_counters(), Snap::default(), SimTime::ZERO);
        let reaped = reg.reap_all();
        assert_eq!(reaped.len(), 2);
        assert!(reg.get(0).is_none() && reg.get(1).is_none());
        assert!(reg.snapshot().is_empty());
        // Slot indices stay process-unique across the reap.
        assert_eq!(reg.registered(), 2);
        let s = reg.register(0, dummy_counters(), Snap::default(), SimTime::ZERO);
        assert_eq!(s.slot, 2);
    }

    #[test]
    fn epoch_start_is_lock_free_readable_while_owner_held() {
        let reg = SlotRegistry::with_capacity(1);
        let s = reg.register(0, dummy_counters(), Snap::default(), SimTime::ZERO);
        let guard = s.lock_owner();
        // Owner lock held: the monitor-style read still proceeds.
        s.set_epoch_start(SimTime::ZERO + Duration::from_ns(123));
        assert_eq!(
            reg.epoch_starts(&[0]),
            vec![Some(SimTime::ZERO + Duration::from_ns(123))]
        );
        drop(guard);
    }

    #[test]
    fn lock_wait_accounting_counts_contention() {
        let reg = SlotRegistry::with_capacity(1);
        let s = reg.register(0, dummy_counters(), Snap::default(), SimTime::ZERO);
        assert_eq!(s.lock_acquisitions(), 0);
        drop(s.lock_owner());
        assert_eq!(s.lock_acquisitions(), 1);
        // Uncontended fast path records no wait.
        assert_eq!(s.lock_wait_ns(), 0);

        let s2 = Arc::clone(&s);
        let g = s.lock_owner();
        let h = std::thread::spawn(move || {
            drop(s2.lock_owner()); // must wait for `g`
            s2.lock_wait_ns()
        });
        std::thread::sleep(std::time::Duration::from_millis(5));
        drop(g);
        let waited = h.join().unwrap();
        assert!(waited > 0, "contended acquisition records wait time");
    }
}
