//! The emulator runtime: epoch management, monitor, hooks.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use parking_lot::Mutex;
use quartz_memsim::MemorySystem;
use quartz_platform::kmod::KernelModule;
use quartz_platform::pmu::bank::StandardCounters;
use quartz_platform::pmu::COUNTER_MASK;
use quartz_platform::time::Duration;
use quartz_platform::{NodeId, Platform, PlatformError, SocketId, TimerFault};
use quartz_threadsim::{
    AtomicEvent, AtomicPhase, CasOutcome, Engine, Hooks, SimFailure, ThreadCtx,
};

use crate::config::{CounterAccess, LatencyModelKind, MemoryMode, QuartzConfig};
use crate::error::QuartzError;
use crate::model;
use crate::registry::{SlotRegistry, ThreadSlot};
use crate::stats::{DegradationCounters, EpochReason, EpochRecord, QuartzStats, ThreadStats};

/// Retry budget for transient `rdpmc` failures before an epoch gives up
/// and falls back to its previous counter snapshot.
const PMU_READ_RETRIES: u32 = 3;

/// Re-program budget for the thermal readback-verify loop before a
/// throttle target is accepted degraded.
const THERMAL_RETRIES: u32 = 4;

/// Topology re-reads attempted when a stale snapshot excludes the
/// registering core, before the hardware is trusted over the snapshot.
const TOPOLOGY_REFRESHES: u32 = 3;

/// A counter snapshot at an epoch boundary.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct Snap {
    pub stalls: u64,
    pub hits: u64,
    pub miss_local: u64,
    pub miss_remote: u64,
    pub miss_all: u64,
    /// Store-buffer stall cycles (`RESOURCE_STALLS:SB`). Read — and
    /// therefore nonzero — only when the asymmetric write model is on.
    pub sb_stalls: u64,
    pub store_miss_local: u64,
    pub store_miss_remote: u64,
    pub store_miss_all: u64,
}

impl Snap {
    /// Per-field counter delta, wrap-aware: hardware counters are 48
    /// bits wide, so a later read below an earlier one means the counter
    /// wrapped and the true delta is `(now - then) mod 2^48`.
    ///
    /// The seed used `saturating_sub`, which silently reported a *zero*
    /// delta across a wrap — an epoch spanning the wrap lost its entire
    /// stall accounting and injected no delay.
    pub(crate) fn delta(self, earlier: Snap) -> Snap {
        let d = |now: u64, then: u64| now.wrapping_sub(then) & COUNTER_MASK;
        Snap {
            stalls: d(self.stalls, earlier.stalls),
            hits: d(self.hits, earlier.hits),
            miss_local: d(self.miss_local, earlier.miss_local),
            miss_remote: d(self.miss_remote, earlier.miss_remote),
            miss_all: d(self.miss_all, earlier.miss_all),
            sb_stalls: d(self.sb_stalls, earlier.sb_stalls),
            store_miss_local: d(self.store_miss_local, earlier.store_miss_local),
            store_miss_remote: d(self.store_miss_remote, earlier.store_miss_remote),
            store_miss_all: d(self.store_miss_all, earlier.store_miss_all),
        }
    }

    /// How many fields went backwards relative to `earlier` — each one
    /// is a 48-bit wrap (assuming reads are otherwise monotonic).
    pub(crate) fn wraps_since(self, earlier: Snap) -> u64 {
        [
            (self.stalls, earlier.stalls),
            (self.hits, earlier.hits),
            (self.miss_local, earlier.miss_local),
            (self.miss_remote, earlier.miss_remote),
            (self.miss_all, earlier.miss_all),
            (self.sb_stalls, earlier.sb_stalls),
            (self.store_miss_local, earlier.store_miss_local),
            (self.store_miss_remote, earlier.store_miss_remote),
            (self.store_miss_all, earlier.store_miss_all),
        ]
        .iter()
        .filter(|(now, then)| now < then)
        .count() as u64
    }

    /// Total LLC misses, regardless of which counters the family exposes.
    pub(crate) fn misses(self) -> u64 {
        if self.miss_all > 0 {
            self.miss_all
        } else {
            self.miss_local + self.miss_remote
        }
    }

    /// Total store misses, regardless of which counters the family
    /// exposes (the store-side analogue of [`Snap::misses`]).
    pub(crate) fn store_misses(self) -> u64 {
        if self.store_miss_all > 0 {
            self.store_miss_all
        } else {
            self.store_miss_local + self.store_miss_remote
        }
    }
}

/// The Quartz emulator (user-mode library + kernel module).
///
/// Construct with [`Quartz::new`], install into an engine with
/// [`Quartz::attach`], and use the persistent-memory API
/// ([`Quartz::pmalloc`], [`Quartz::pflush`], …) from workload code. See
/// the [crate-level documentation](crate) for a complete example.
pub struct Quartz {
    pub(crate) config: QuartzConfig,
    pub(crate) mem: Arc<MemorySystem>,
    pub(crate) platform: Platform,
    pub(crate) kmod: KernelModule,
    /// Node hosting virtual NVM (`pmalloc` target).
    pub(crate) nvm_node: NodeId,
    /// Measured average local-DRAM latency (ns).
    pub(crate) dram_local_ns: f64,
    /// Measured average remote-DRAM latency (ns).
    pub(crate) dram_remote_ns: f64,
    /// `W` of Eq. 3 (DRAM / L3 latency ratio).
    pub(crate) w_ratio: f64,
    /// Sharded per-thread emulator state (see [`crate::registry`]).
    pub(crate) registry: SlotRegistry,
    /// Lock-free graceful-degradation accounting (see
    /// [`crate::stats::DegradationStats`]).
    pub(crate) degradation: Arc<DegradationCounters>,
    pub(crate) init_time: Mutex<Duration>,
    /// Per-epoch trace, populated when enabled (diagnostics; the paper's
    /// statistics "provide useful feedback to the user" for epoch-size
    /// tuning, and the trace is the finest-grained form of it).
    pub(crate) trace: Mutex<Option<Vec<EpochRecord>>>,
}

impl Quartz {
    /// Validates the configuration against the machine and builds the
    /// emulator.
    ///
    /// # Errors
    ///
    /// * [`QuartzError::TwoMemoryUnsupported`] on Sandy Bridge in
    ///   two-memory mode (no local/remote miss split, paper §3.3),
    /// * [`QuartzError::NoSiblingSocket`] without a second socket in
    ///   two-memory mode,
    /// * [`QuartzError::TargetFasterThanSubstrate`] if the requested NVM
    ///   latency is below the DRAM the emulation runs on.
    pub fn new(config: QuartzConfig, mem: Arc<MemorySystem>) -> Result<Arc<Self>, QuartzError> {
        let platform = mem.platform().clone();
        let params = platform.arch_params();
        let (dram_local_ns, dram_remote_ns) = config.measured_dram_ns.unwrap_or((
            params.local_dram_ns.avg_ns as f64,
            params.remote_dram_ns.avg_ns as f64,
        ));
        let nvm_node = match config.memory_mode {
            MemoryMode::PmOnly => platform.topology().node_of_socket(SocketId(0)),
            MemoryMode::TwoMemory => {
                if !params.has_local_remote_miss_split() {
                    return Err(QuartzError::TwoMemoryUnsupported { arch: params.arch });
                }
                let sibling = platform
                    .topology()
                    .sibling_socket(SocketId(0))
                    .ok_or(QuartzError::NoSiblingSocket)?;
                platform.topology().node_of_socket(sibling)
            }
        };
        let substrate_ns = match config.memory_mode {
            MemoryMode::PmOnly => dram_local_ns,
            MemoryMode::TwoMemory => dram_remote_ns,
        };
        if config.target.read_latency_ns < substrate_ns {
            return Err(QuartzError::TargetFasterThanSubstrate {
                requested_ns: config.target.read_latency_ns,
                substrate_ns,
            });
        }
        let kmod = platform.kernel_module();
        let num_cores = platform.topology().num_cores();
        Ok(Arc::new(Quartz {
            w_ratio: params.w_ratio(),
            config,
            platform,
            kmod,
            nvm_node,
            dram_local_ns,
            dram_remote_ns,
            mem,
            registry: SlotRegistry::with_capacity(num_cores),
            degradation: Arc::new(DegradationCounters::default()),
            init_time: Mutex::new(Duration::ZERO),
            trace: Mutex::new(None),
        }))
    }

    /// The configuration in effect.
    pub fn config(&self) -> &QuartzConfig {
        &self.config
    }

    /// The node `pmalloc` allocates from.
    pub fn nvm_node(&self) -> NodeId {
        self.nvm_node
    }

    /// Installs the emulator into an engine: hooks, the monitor timer,
    /// and DRAM bandwidth throttling. The equivalent of `LD_PRELOAD`ing
    /// the library and loading the kernel module.
    ///
    /// # Errors
    ///
    /// Propagates thermal-register programming failures.
    pub fn attach(self: &Arc<Self>, engine: &Engine) -> Result<(), QuartzError> {
        engine.set_hooks(Arc::clone(self) as Arc<dyn Hooks>);

        // Monitor thread: periodically signal threads whose epoch
        // exceeded the maximum epoch length (paper §3.1, Fig. 5 step 2).
        // The age scan reads each slot's atomic `epoch_start` — no
        // per-thread lock — and signalling happens after the registry
        // read guard is dropped, so the monitor never serializes the
        // interposition hot path.
        let q = Arc::clone(self);
        engine.add_timer(self.config.monitor_period, move |api| {
            // The platform may drop or defer this firing (injected
            // scheduling faults). A dropped firing only postpones the
            // age check to the next period — epochs are then closed
            // late, never lost, because interposition points still fire.
            if let Some(inj) = q.platform.fault_injector() {
                match inj.timer_fault() {
                    TimerFault::None => {}
                    TimerFault::Drop => {
                        q.degradation.timer_drops.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    TimerFault::Late(extra) => {
                        q.degradation
                            .timer_deferrals
                            .fetch_add(1, Ordering::Relaxed);
                        api.defer_next(extra);
                    }
                }
            }
            let live = api.live_threads().to_vec();
            let tids: Vec<usize> = live.iter().map(|t| t.0).collect();
            let starts = q.registry.epoch_starts(&tids); // guard dropped inside
            for (tid, start) in live.into_iter().zip(starts) {
                let Some(start) = start else { continue };
                let age = api.fire_time().saturating_duration_since(start);
                if age > q.config.max_epoch {
                    api.signal_thread(tid);
                }
            }
        });

        // Bandwidth emulation: program the thermal registers (§2.1).
        if let Some(bw) = self.config.target.bandwidth_gbps {
            let peak = self.mem.config().node_peak_bw_gbps();
            let register = model::throttle_register_for(bw, peak);
            match self.config.memory_mode {
                MemoryMode::PmOnly => {
                    for s in 0..self.platform.topology().num_sockets() {
                        self.program_throttle_verified(SocketId(s), register)?;
                    }
                }
                MemoryMode::TwoMemory => {
                    // Only virtual NVM is throttled; local DRAM keeps
                    // full bandwidth.
                    self.program_throttle_verified(SocketId(self.nvm_node.0), register)?;
                }
            }
        }

        if self.config.charge_init_cost {
            *self.init_time.lock() = self
                .platform
                .cycles(self.platform.op_costs().lib_init_cycles);
        }
        Ok(())
    }

    /// Programs a throttle target on every channel of `socket` with a
    /// readback-verify + re-program loop: `THRT_PWR_DIMM` writes on a
    /// hostile platform can be silently dropped or apply perturbed
    /// values, and the register is the only ground truth. After
    /// [`THERMAL_RETRIES`] failed verifies the target is accepted
    /// *degraded* (bandwidth will be off by the perturbation, which the
    /// linear throttle model bounds) rather than failing the attach.
    fn program_throttle_verified(
        &self,
        socket: SocketId,
        register: u32,
    ) -> Result<(), QuartzError> {
        let mut attempts = 0;
        loop {
            self.kmod.set_dimm_throttle(socket, register)?;
            let thermal = self.kmod.thermal();
            let verified = (0..thermal.channels_per_socket())
                .all(|ch| thermal.throttle_value(socket, ch) == register);
            if verified {
                return Ok(());
            }
            self.degradation
                .thermal_write_faults
                .fetch_add(1, Ordering::Relaxed);
            if attempts >= THERMAL_RETRIES {
                self.degradation
                    .thermal_gave_up
                    .fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
            attempts += 1;
            self.degradation
                .thermal_retries
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Enables or disables per-epoch tracing. Enabling clears any
    /// previous trace.
    pub fn set_epoch_trace(&self, enabled: bool) {
        *self.trace.lock() = enabled.then(Vec::new);
    }

    /// The epoch trace collected so far (empty if tracing is disabled).
    pub fn epoch_trace(&self) -> Vec<EpochRecord> {
        self.trace.lock().clone().unwrap_or_default()
    }

    /// A snapshot of aggregate emulator statistics.
    ///
    /// Slot locks are taken one at a time (never while holding the
    /// registry guard), so aggregation can run concurrently with the
    /// workload without stalling more than one thread's hot path.
    pub fn stats(&self) -> QuartzStats {
        let mut totals = ThreadStats::default();
        for slot in self.registry.snapshot() {
            let s = {
                let owner = slot.lock_owner();
                owner.stats.clone()
            };
            totals.epochs_monitor += s.epochs_monitor;
            totals.epochs_lock += s.epochs_lock;
            totals.epochs_unlock += s.epochs_unlock;
            totals.epochs_notify += s.epochs_notify;
            totals.epochs_barrier += s.epochs_barrier;
            totals.epochs_atomic += s.epochs_atomic;
            totals.epochs_exit += s.epochs_exit;
            totals.skipped_min_epoch += s.skipped_min_epoch;
            totals.injected += s.injected;
            totals.overhead += s.overhead;
            totals.carried_overhead += s.carried_overhead;
            totals.pflush_delay += s.pflush_delay;
            totals.pflushes += s.pflushes;
            totals.lines_dirty += s.lines_dirty;
            totals.lines_in_wpq += s.lines_in_wpq;
            totals.lines_durable += s.lines_durable;
            totals.atomic_ops += s.atomic_ops;
            totals.cas_handoffs += s.cas_handoffs;
            totals.cas_handoff_wait += s.cas_handoff_wait;
            totals.write_term += s.write_term;
            // Host-side lock telemetry lives in slot atomics (it is
            // written outside the owner lock).
            totals.lock_wait_ns += slot.lock_wait_ns();
            totals.lock_acquisitions += slot.lock_acquisitions();
        }
        QuartzStats {
            threads: self.registry.registered(),
            init_time: *self.init_time.lock(),
            totals,
            degradation: self.degradation.snapshot(),
        }
    }

    /// Per-thread statistics keyed by thread id, in registration order
    /// (feedback for epoch-size tuning and contention diagnosis).
    pub fn per_thread_stats(&self) -> Vec<ThreadStats> {
        let mut slots = self.registry.snapshot();
        slots.sort_by_key(|s| s.slot);
        slots
            .iter()
            .map(|slot| {
                let mut s = slot.lock_owner().stats.clone();
                s.lock_wait_ns = slot.lock_wait_ns();
                s.lock_acquisitions = slot.lock_acquisitions();
                s
            })
            .collect()
    }

    /// Reads the epoch counters, retrying transient `rdpmc` failures
    /// with exponential backoff (each retry is charged at a doubled
    /// `rdpmc` cost, modeling the pipeline-drain the retry pays for).
    /// After [`PMU_READ_RETRIES`] failures a slot falls back to its
    /// value in `prev` — the previous epoch-boundary snapshot — which
    /// makes the failing counter contribute a *zero* delta for this
    /// epoch (under-injection, the safe direction) instead of a
    /// garbage one. Non-transient errors still panic: they mean the
    /// counters were never programmed, which is a setup bug.
    fn read_counters(
        &self,
        ctx: &mut ThreadCtx,
        counters: StandardCounters,
        prev: Option<Snap>,
    ) -> Snap {
        let read = |ctx: &mut ThreadCtx, slot: usize, fallback: u64| -> u64 {
            let mut attempt = 0u32;
            loop {
                let r = match self.config.counter_access {
                    CounterAccess::Rdpmc => ctx.rdpmc(slot),
                    CounterAccess::Papi => ctx.rdpmc_papi(slot),
                };
                match r {
                    Ok(v) => {
                        if attempt > 0 {
                            self.degradation
                                .pmu_read_retries
                                .fetch_add(u64::from(attempt), Ordering::Relaxed);
                        }
                        return v;
                    }
                    Err(PlatformError::TransientPmuRead { .. }) => {
                        self.degradation
                            .pmu_read_faults
                            .fetch_add(1, Ordering::Relaxed);
                        if attempt >= PMU_READ_RETRIES {
                            self.degradation
                                .pmu_reads_abandoned
                                .fetch_add(1, Ordering::Relaxed);
                            return fallback;
                        }
                        // Exponential backoff, charged as emulator
                        // overhead (and thus amortized into the delay).
                        ctx.charge(
                            self.platform
                                .cycles(self.platform.op_costs().rdpmc_cycles << attempt),
                        );
                        attempt += 1;
                    }
                    // INVARIANT: non-transient read errors mean the
                    // counters were never programmed — a setup bug in
                    // *this* crate, not a workload or platform fault.
                    // The panic unwinds through the engine's per-thread
                    // catch_unwind and surfaces as a contained
                    // `SimFailure::ThreadPanic`, not a process abort.
                    Err(e) => panic!("counters programmed at registration: {e}"),
                }
            }
        };
        let fb = prev.unwrap_or_default();
        let stalls = read(ctx, counters.stalls_l2_pending.slot, fb.stalls);
        let hits = read(ctx, counters.l3_hit.slot, fb.hits);
        let miss_local = counters
            .l3_miss_local
            .map(|c| read(ctx, c.slot, fb.miss_local))
            .unwrap_or(0);
        let miss_remote = counters
            .l3_miss_remote
            .map(|c| read(ctx, c.slot, fb.miss_remote))
            .unwrap_or(0);
        let miss_all = counters
            .l3_miss_all
            .map(|c| read(ctx, c.slot, fb.miss_all))
            .unwrap_or(0);
        // Store-side slots exist only under asymmetric programming, so
        // these reads — and the virtual time `rdpmc` charges — happen
        // exactly when the asymmetric model is on. A symmetric config
        // performs the same four reads as always, byte for byte.
        let sb_stalls = counters
            .store_stalls
            .map(|c| read(ctx, c.slot, fb.sb_stalls))
            .unwrap_or(0);
        let store_miss_local = counters
            .store_miss_local
            .map(|c| read(ctx, c.slot, fb.store_miss_local))
            .unwrap_or(0);
        let store_miss_remote = counters
            .store_miss_remote
            .map(|c| read(ctx, c.slot, fb.store_miss_remote))
            .unwrap_or(0);
        let store_miss_all = counters
            .store_miss_all
            .map(|c| read(ctx, c.slot, fb.store_miss_all))
            .unwrap_or(0);
        Snap {
            stalls,
            hits,
            miss_local,
            miss_remote,
            miss_all,
            sb_stalls,
            store_miss_local,
            store_miss_remote,
            store_miss_all,
        }
    }

    /// Computes the *read-side* injected delay (ns) for one epoch's
    /// counter deltas (Eq. 1 or Eq. 2; the asymmetric write term is
    /// computed separately by
    /// [`compute_write_delay_ns`](Self::compute_write_delay_ns)).
    pub(crate) fn compute_delay_ns(&self, d: Snap) -> f64 {
        let nvm = self.config.target.read_latency_ns;
        match (self.config.model, self.config.memory_mode) {
            (LatencyModelKind::Simple, MemoryMode::PmOnly) => {
                model::delay_simple_ns(d.misses(), self.dram_local_ns, nvm)
            }
            (LatencyModelKind::Simple, MemoryMode::TwoMemory) => {
                model::delay_simple_ns(d.miss_remote, self.dram_remote_ns, nvm)
            }
            (LatencyModelKind::StallBased, mode) => {
                let ldm_stall_cycles = model::stalls_from_counters(
                    d.stalls as f64,
                    d.hits as f64,
                    d.misses() as f64,
                    self.w_ratio,
                );
                let stall_ns = self
                    .platform
                    .frequency()
                    .cycles_to_duration(ldm_stall_cycles.round() as u64)
                    .as_ns_f64();
                match mode {
                    MemoryMode::PmOnly => {
                        model::delay_stall_based_ns(stall_ns, self.dram_local_ns, nvm)
                    }
                    MemoryMode::TwoMemory => {
                        let rem_ns = model::split_remote_stall_ns(
                            stall_ns,
                            d.miss_local,
                            d.miss_remote,
                            self.dram_local_ns,
                            self.dram_remote_ns,
                        );
                        model::delay_stall_based_ns(rem_ns, self.dram_remote_ns, nvm)
                    }
                }
            }
        }
    }

    /// Computes the asymmetric *write-side* delay (ns) for one epoch's
    /// deltas — the store-path Eq. 2 analogue over `RESOURCE_STALLS:SB`
    /// (or, under the simple model, store-miss counts). Zero whenever
    /// the asymmetric model is off: symmetric configs never program the
    /// store counters, so the deltas are structurally zero and the
    /// whole term short-circuits.
    ///
    /// Unlike the read side, the store-buffer stall count needs no
    /// Eq. 3-style hit/miss weighting: `RESOURCE_STALLS:SB` only fires
    /// on buffer-full back-pressure, which is already purely the DRAM-
    /// bound share of store traffic.
    pub(crate) fn compute_write_delay_ns(&self, d: Snap) -> f64 {
        let Some(wlat) = self.config.target.write_latency_ns else {
            return 0.0;
        };
        match (self.config.model, self.config.memory_mode) {
            (LatencyModelKind::Simple, MemoryMode::PmOnly) => {
                model::write_delay_simple_ns(d.store_misses(), self.dram_local_ns, wlat)
            }
            (LatencyModelKind::Simple, MemoryMode::TwoMemory) => {
                model::write_delay_simple_ns(d.store_miss_remote, self.dram_remote_ns, wlat)
            }
            (LatencyModelKind::StallBased, mode) => {
                let sb_ns = self
                    .platform
                    .frequency()
                    .cycles_to_duration(d.sb_stalls)
                    .as_ns_f64();
                match mode {
                    MemoryMode::PmOnly => {
                        model::delay_stall_based_ns(sb_ns, self.dram_local_ns, wlat)
                    }
                    MemoryMode::TwoMemory => {
                        // §3.3 transplanted onto the store path: weight
                        // the SB stall time by latency-weighted store-
                        // miss locality, inflate only the remote share.
                        let rem_ns = model::split_remote_stall_ns(
                            sb_ns,
                            d.store_miss_local,
                            d.store_miss_remote,
                            self.dram_local_ns,
                            self.dram_remote_ns,
                        );
                        model::delay_stall_based_ns(rem_ns, self.dram_remote_ns, wlat)
                    }
                }
            }
        }
    }

    /// [`compute_write_delay_ns`](Self::compute_write_delay_ns) with the
    /// same sanity bounds as the read side: SB stall cycles clamp to the
    /// epoch budget, the resulting delay to the budget-implied maximum
    /// at the *write* latency. The simple model is exempt for the same
    /// ablation reason.
    pub(crate) fn compute_write_delay_ns_bounded(
        &self,
        d: Snap,
        budget_cycles: u64,
    ) -> (f64, bool) {
        let Some(wlat) = self.config.target.write_latency_ns else {
            return (0.0, false);
        };
        match (self.config.model, self.config.memory_mode) {
            (LatencyModelKind::Simple, _) => (self.compute_write_delay_ns(d), false),
            (LatencyModelKind::StallBased, mode) => {
                let (sb_cycles, stall_clamped) =
                    model::clamp_stall_cycles(d.sb_stalls as f64, budget_cycles);
                if stall_clamped {
                    self.degradation
                        .stall_clamps
                        .fetch_add(1, Ordering::Relaxed);
                }
                let freq = self.platform.frequency();
                let sb_ns = freq
                    .cycles_to_duration(sb_cycles.round() as u64)
                    .as_ns_f64();
                let (delay, substrate) = match mode {
                    MemoryMode::PmOnly => (
                        model::delay_stall_based_ns(sb_ns, self.dram_local_ns, wlat),
                        self.dram_local_ns,
                    ),
                    MemoryMode::TwoMemory => {
                        let rem_ns = model::split_remote_stall_ns(
                            sb_ns,
                            d.store_miss_local,
                            d.store_miss_remote,
                            self.dram_local_ns,
                            self.dram_remote_ns,
                        );
                        (
                            model::delay_stall_based_ns(rem_ns, self.dram_remote_ns, wlat),
                            self.dram_remote_ns,
                        )
                    }
                };
                let budget_ns = freq.cycles_to_duration(budget_cycles).as_ns_f64();
                let (delay, delay_clamped) =
                    model::clamp_delay_ns(delay, budget_ns, substrate, wlat);
                if delay_clamped {
                    self.degradation
                        .delay_clamps
                        .fetch_add(1, Ordering::Relaxed);
                }
                (delay, stall_clamped || delay_clamped)
            }
        }
    }

    /// [`compute_delay_ns`](Self::compute_delay_ns) with the §3-model
    /// sanity bounds applied: the derived `LDM_STALL` is clamped to the
    /// epoch's cycle budget (a core cannot stall longer than the epoch
    /// lasted — beyond it the counters are corrupt) and the resulting
    /// delay to the budget-implied maximum. Returns the bounded delay
    /// and whether any clamp fired (the caller treats that as a signal
    /// to re-calibrate the counter baseline).
    ///
    /// The *simple* model is exempt from the budget: Eq. 1 assumes every
    /// miss serialized and legitimately over-injects under MLP (Fig. 2)
    /// — that over-injection is the entire point of the ablation, so
    /// clamping it would erase the effect being studied.
    pub(crate) fn compute_delay_ns_bounded(&self, d: Snap, budget_cycles: u64) -> (f64, bool) {
        let nvm = self.config.target.read_latency_ns;
        match (self.config.model, self.config.memory_mode) {
            (LatencyModelKind::Simple, _) => (self.compute_delay_ns(d), false),
            (LatencyModelKind::StallBased, mode) => {
                let ldm_stall_cycles = model::stalls_from_counters(
                    d.stalls as f64,
                    d.hits as f64,
                    d.misses() as f64,
                    self.w_ratio,
                );
                let (ldm_stall_cycles, stall_clamped) =
                    model::clamp_stall_cycles(ldm_stall_cycles, budget_cycles);
                if stall_clamped {
                    self.degradation
                        .stall_clamps
                        .fetch_add(1, Ordering::Relaxed);
                }
                let freq = self.platform.frequency();
                let stall_ns = freq
                    .cycles_to_duration(ldm_stall_cycles.round() as u64)
                    .as_ns_f64();
                let (delay, substrate) = match mode {
                    MemoryMode::PmOnly => (
                        model::delay_stall_based_ns(stall_ns, self.dram_local_ns, nvm),
                        self.dram_local_ns,
                    ),
                    MemoryMode::TwoMemory => {
                        let rem_ns = model::split_remote_stall_ns(
                            stall_ns,
                            d.miss_local,
                            d.miss_remote,
                            self.dram_local_ns,
                            self.dram_remote_ns,
                        );
                        (
                            model::delay_stall_based_ns(rem_ns, self.dram_remote_ns, nvm),
                            self.dram_remote_ns,
                        )
                    }
                };
                let budget_ns = freq.cycles_to_duration(budget_cycles).as_ns_f64();
                let (delay, delay_clamped) =
                    model::clamp_delay_ns(delay, budget_ns, substrate, nvm);
                if delay_clamped {
                    self.degradation
                        .delay_clamps
                        .fetch_add(1, Ordering::Relaxed);
                }
                (delay, stall_clamped || delay_clamped)
            }
        }
    }

    /// The calling thread's slot handle.
    pub(crate) fn slot_of(&self, ctx: &ThreadCtx) -> Option<Arc<ThreadSlot>> {
        self.registry.get(ctx.thread_id().0)
    }

    /// Closes the current epoch: reads counters, evaluates the model,
    /// amortizes overhead, injects the delay, and opens a new epoch
    /// (paper Fig. 5 steps 3–6).
    pub(crate) fn end_epoch(&self, ctx: &mut ThreadCtx, reason: EpochReason) {
        let Some(slot) = self.slot_of(ctx) else {
            return; // thread never registered (hooks disabled mid-run)
        };
        self.end_epoch_on(&slot, ctx, reason, |_| {});
    }

    /// The epoch-close critical section, parameterized over a midpoint
    /// probe invoked between the counter read and the state update.
    ///
    /// The probe exists so tests can prove the section is a **single
    /// acquisition**: the seed's implementation dropped the state lock
    /// at exactly this point (check-then-act), letting a concurrent
    /// close charge the same counter delta twice. Here `owner` is held
    /// across the whole read-compute-update sequence, so the window is
    /// structurally gone. Production callers pass a no-op that inlines
    /// away.
    pub(crate) fn end_epoch_on(
        &self,
        slot: &ThreadSlot,
        ctx: &mut ThreadCtx,
        reason: EpochReason,
        midpoint: impl FnOnce(&ThreadSlot),
    ) {
        // The one-and-only shared-state acquisition for this event.
        let mut owner = slot.lock_owner();
        let epoch_opened = slot.epoch_start();

        let t0 = ctx.now();
        let prev = owner.snap;
        let cur = self.read_counters(ctx, owner.counters, Some(prev));
        ctx.charge(
            self.platform
                .cycles(self.platform.op_costs().epoch_compute_cycles),
        );
        // Counters are 48 bits: a read below the previous boundary is a
        // wrap, which the delta math below absorbs (mod 2^48) but the
        // degradation block still reports.
        let wraps = cur.wraps_since(prev);
        if wraps > 0 {
            self.degradation
                .counter_wraps
                .fetch_add(wraps, Ordering::Relaxed);
        }
        // Compute the delta exactly once; it feeds both the delay model
        // and the trace record below (the seed recomputed it against an
        // already-overwritten `snap`, so the trace could log a different
        // delta than the one charged).
        let d = cur.delta(prev);
        midpoint(slot);
        // The epoch's cycle budget: the wall span since the epoch opened
        // plus this close's own bookkeeping, widened by the counter-
        // fidelity margin. A derived stall time above it is physically
        // impossible and marks the counters as corrupt.
        let costs = self.platform.op_costs();
        let span_cycles = self
            .platform
            .frequency()
            .duration_to_cycles(t0.saturating_duration_since(epoch_opened));
        // The asymmetric model really performs extra rdpmc reads per
        // boundary, so they join the budget; store_len() is 0 in the
        // symmetric configuration, where the budget must stay the
        // historical 4-read value byte for byte.
        let n_reads = 4 + owner.counters.store_len() as u64;
        let budget = model::epoch_budget_cycles_for(
            span_cycles,
            costs.epoch_compute_cycles,
            costs.rdpmc_cycles,
            n_reads,
        );
        let (read_ns, read_clamped) = self.compute_delay_ns_bounded(d, budget);
        let (write_ns, write_clamped) = self.compute_write_delay_ns_bounded(d, budget);
        let clamped = read_clamped || write_clamped;
        let write_term = Duration::from_ns_f64(write_ns);
        let delay = Duration::from_ns_f64(read_ns) + write_term;

        // Amortize emulator overhead into the injected delay (§3.2):
        // overhead already slowed the thread down, so it is deducted
        // from the delay; any excess is carried into upcoming epochs.
        if clamped {
            // The counters this epoch closed on are corrupt — a clamp
            // fired. Force a re-calibration: take a fresh baseline so the
            // next epoch deltas against a trusted read rather than the
            // corrupt one. The extra read's time folds into `overhead`
            // below and is amortized like any other bookkeeping.
            self.degradation
                .recalibrations
                .fetch_add(1, Ordering::Relaxed);
            owner.snap = self.read_counters(ctx, owner.counters, Some(cur));
        } else {
            owner.snap = cur;
        }
        let overhead = ctx.now().saturating_duration_since(t0);
        // The new epoch starts at the counter-read point, so the
        // injected spin below counts toward the next epoch's age:
        // the minimum-epoch check then gauges *emulated* time, and
        // with phases longer than the minimum epoch both the
        // lock-entry and lock-exit interpositions fire, keeping
        // outside-the-lock delay outside the lock (§2.3).
        slot.set_epoch_start(ctx.now());
        owner.stats.overhead += overhead;
        owner.stats.write_term += write_term;
        let carried = owner.stats.carried_overhead + overhead;
        let inject = delay.saturating_sub(carried);
        owner.stats.carried_overhead = carried.saturating_sub(delay);
        match reason {
            EpochReason::MonitorSignal => owner.stats.epochs_monitor += 1,
            EpochReason::MutexLock => owner.stats.epochs_lock += 1,
            EpochReason::MutexUnlock => owner.stats.epochs_unlock += 1,
            EpochReason::CondNotify => owner.stats.epochs_notify += 1,
            EpochReason::Barrier => owner.stats.epochs_barrier += 1,
            EpochReason::Atomic => owner.stats.epochs_atomic += 1,
            EpochReason::ThreadExit => owner.stats.epochs_exit += 1,
        }
        let injected = if self.config.inject_delays && !inject.is_zero() {
            owner.stats.injected += inject;
            inject
        } else {
            Duration::ZERO
        };
        drop(owner); // critical section ends before tracing and spinning

        if let Some(trace) = self.trace.lock().as_mut() {
            trace.push(EpochRecord {
                thread: ctx.thread_id().0,
                reason,
                closed_at: t0,
                stall_cycles: d.stalls,
                misses: d.misses(),
                computed_delay: delay,
                injected,
            });
        }

        if !injected.is_zero() {
            ctx.spin(injected);
        }
    }

    /// Interposition helper shared by unlock/notify: close the epoch only
    /// if it is older than the minimum epoch length (§3.1).
    ///
    /// The age check reads the slot's atomic `epoch_start` — no lock —
    /// and the close (or the skip accounting) then acquires the slot
    /// lock exactly once. The seed's separate `epoch_age` lock +
    /// `end_epoch` relock (and its re-check race) are gone.
    fn maybe_end_epoch(&self, ctx: &mut ThreadCtx, reason: EpochReason) {
        let Some(slot) = self.slot_of(ctx) else {
            return;
        };
        let age = ctx.now().saturating_duration_since(slot.epoch_start());
        if age >= self.config.min_epoch {
            self.end_epoch_on(&slot, ctx, reason, |_| {});
        } else {
            slot.lock_owner().stats.skipped_min_epoch += 1;
        }
    }
}

impl Hooks for Quartz {
    fn on_thread_start(&self, ctx: &mut ThreadCtx) {
        // Registration with the monitor: 300k cycles (paper §3.2).
        ctx.charge(
            self.platform
                .cycles(self.platform.op_costs().thread_register_cycles),
        );
        // A stale topology snapshot can claim the registering core does
        // not exist (hotplug races, cached sysfs reads). Re-read a few
        // times — each refresh charged like a clock read — and past the
        // budget trust the hardware over the snapshot: the core is
        // demonstrably alive, it is running this registration.
        let asymmetric = self.config.target.is_asymmetric();
        let mut counters = None;
        for _ in 0..TOPOLOGY_REFRESHES {
            let attempt = if asymmetric {
                self.kmod.try_program_asymmetric_counters(ctx.core())
            } else {
                self.kmod.try_program_standard_counters(ctx.core())
            };
            match attempt {
                Ok(c) => {
                    counters = Some(c);
                    break;
                }
                Err(PlatformError::StaleTopology { .. }) => {
                    self.degradation
                        .topology_stale_reads
                        .fetch_add(1, Ordering::Relaxed);
                    ctx.charge(
                        self.platform
                            .cycles(self.platform.op_costs().clock_gettime_cycles),
                    );
                    self.degradation
                        .topology_refreshes
                        .fetch_add(1, Ordering::Relaxed);
                }
                // INVARIANT: any error other than StaleTopology is a
                // mis-built platform (setup bug); contained by the
                // engine's catch_unwind as `SimFailure::ThreadPanic`.
                Err(e) => panic!("counter programming failed at registration: {e}"),
            }
        }
        let counters = counters.unwrap_or_else(|| {
            if asymmetric {
                self.kmod.program_asymmetric_counters(ctx.core())
            } else {
                self.kmod.program_standard_counters(ctx.core())
            }
        });
        let snap = self.read_counters(ctx, counters, None);
        self.registry
            .register(ctx.thread_id().0, counters, snap, ctx.now());
    }

    fn on_thread_exit(&self, ctx: &mut ThreadCtx) {
        self.end_epoch(ctx, EpochReason::ThreadExit);
    }

    fn before_mutex_lock(&self, ctx: &mut ThreadCtx) {
        if self.config.sync_interposition {
            self.maybe_end_epoch(ctx, EpochReason::MutexLock);
        }
    }

    fn before_mutex_unlock(&self, ctx: &mut ThreadCtx) {
        if self.config.sync_interposition {
            self.maybe_end_epoch(ctx, EpochReason::MutexUnlock);
        }
    }

    fn before_cond_notify(&self, ctx: &mut ThreadCtx) {
        if self.config.sync_interposition {
            self.maybe_end_epoch(ctx, EpochReason::CondNotify);
        }
    }

    fn before_barrier(&self, ctx: &mut ThreadCtx) {
        if self.config.sync_interposition {
            self.maybe_end_epoch(ctx, EpochReason::Barrier);
        }
    }

    /// The CAS/fence seams of lock-free code (the paper's §6 gap).
    ///
    /// `Before` fires ahead of a publishing operation: the epoch settles
    /// *there*, so delay accumulated since the last boundary lands
    /// before the value becomes visible and therefore propagates to
    /// whichever thread observes the publication — exactly the
    /// mutex-release rule of Fig. 4 (b), transplanted onto atomics.
    /// `After` carries the outcome and any cross-thread hand-off edge:
    /// a successful CAS that observed another thread's publication is
    /// the lock-free release→acquire pair, and the visibility stall the
    /// engine charged for it is accounted here.
    fn on_atomic(&self, ctx: &mut ThreadCtx, ev: &AtomicEvent) {
        if !self.config.sync_interposition || !self.config.atomic_interposition {
            return;
        }
        match ev.phase {
            AtomicPhase::Before => self.maybe_end_epoch(ctx, EpochReason::Atomic),
            AtomicPhase::After => {
                let Some(slot) = self.slot_of(ctx) else {
                    return;
                };
                let mut owner = slot.lock_owner();
                owner.stats.atomic_ops += 1;
                if !ev.handoff_wait.is_zero() {
                    owner.stats.cas_handoff_wait += ev.handoff_wait;
                }
                if ev.outcome == CasOutcome::Success && ev.handoff_from.is_some() {
                    owner.stats.cas_handoffs += 1;
                }
            }
        }
    }

    fn on_signal(&self, ctx: &mut ThreadCtx) {
        self.maybe_end_epoch(ctx, EpochReason::MonitorSignal);
    }

    /// The failure reaper: a contained [`SimFailure`] leaves dead
    /// threads' slots in the registry mid-epoch — possibly with
    /// undrained pending flushes, possibly with the owner lock still
    /// held by a thread the engine had to detach. Drain them all so
    /// the shared runtime's aggregates are not poisoned for subsequent
    /// runs in this process, and record an epoch-state sanity check in
    /// [`DegradationStats`](crate::stats::DegradationStats).
    ///
    /// Runs on the host thread with no engine lock held; takes the
    /// registry write lock (released before any slot lock) and then at
    /// most one slot lock at a time — the same ordering as aggregation
    /// (rules 1–2 in the `registry` module docs).
    fn on_sim_failure(&self, failure: &SimFailure) {
        let reaped = self.registry.reap_all();
        for slot in &reaped {
            self.degradation
                .orphan_slots_reaped
                .fetch_add(1, Ordering::Relaxed);
            match slot.try_lock_owner() {
                None => {
                    // Owner lock held by an unreachable (detached hung)
                    // thread: the slot's epoch state is unknowable.
                    self.degradation
                        .epoch_state_anomalies
                        .fetch_add(1, Ordering::Relaxed);
                }
                Some(mut owner) => {
                    // A dead thread that never reached `pcommit` leaves
                    // queued flush completions behind; crossing them
                    // into a later run would corrupt its durability
                    // accounting.
                    if !owner.pending_flushes.is_empty() {
                        owner.pending_flushes.clear();
                        self.degradation
                            .epoch_state_anomalies
                            .fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        let _ = failure;
    }
}

impl std::fmt::Debug for Quartz {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Quartz")
            .field("config", &self.config)
            .field("nvm_node", &self.nvm_node)
            .finish_non_exhaustive()
    }
}
