//! Emulator statistics and tuning feedback.
//!
//! The paper augments Quartz with "specially designed statistics" that
//! report whether the epoch-processing overhead was amortized entirely
//! and whether adjusting the epoch size may improve accuracy (§3.2).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use quartz_platform::time::Duration;

/// Why an epoch was closed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EpochReason {
    /// The monitor signalled the thread (max epoch exceeded).
    MonitorSignal,
    /// A mutex acquire interposition.
    MutexLock,
    /// A mutex release interposition.
    MutexUnlock,
    /// A condition-variable notify interposition.
    CondNotify,
    /// A barrier-entry interposition (OpenMP-style synchronization).
    Barrier,
    /// A publishing atomic-operation interposition (the CAS/fence seams
    /// of lock-free code — the paper's §6 atomics gap). The epoch
    /// settles *before* the store/CAS/fence publishes, so accumulated
    /// NVM delay lands before the value becomes visible to other
    /// threads, mirroring the mutex-release rule of Fig. 4 (b).
    Atomic,
    /// The thread exited.
    ThreadExit,
}

/// Per-thread accounting, aggregated into [`QuartzStats`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ThreadStats {
    /// Epochs closed by the monitor.
    pub epochs_monitor: u64,
    /// Epochs closed at mutex acquires.
    pub epochs_lock: u64,
    /// Epochs closed at mutex releases.
    pub epochs_unlock: u64,
    /// Epochs closed at condvar notifies.
    pub epochs_notify: u64,
    /// Epochs closed at barrier entries.
    pub epochs_barrier: u64,
    /// Epochs closed at publishing atomic operations (CAS/store/fence
    /// seams; 0 unless the workload uses simulated atomics).
    pub epochs_atomic: u64,
    /// Epochs closed at thread exit.
    pub epochs_exit: u64,
    /// Interposition points skipped because the epoch was younger than
    /// the minimum epoch length.
    pub skipped_min_epoch: u64,
    /// Total delay injected.
    pub injected: Duration,
    /// Total epoch-processing overhead (counter reads + model).
    pub overhead: Duration,
    /// Overhead not yet amortized against injected delays.
    pub carried_overhead: Duration,
    /// Delay injected through `pflush` write emulation.
    pub pflush_delay: Duration,
    /// Number of `pflush` calls.
    pub pflushes: u64,
    /// Host-side nanoseconds spent *waiting* to acquire this thread's
    /// slot lock (contention with aggregation/diagnostics). Pure
    /// emulator-implementation telemetry — not virtual time.
    pub lock_wait_ns: u64,
    /// Slot-lock acquisitions (one per interposition event that touched
    /// shared per-thread state).
    pub lock_acquisitions: u64,
    /// Cache lines still dirty in the cache domain at the reporting
    /// instant (filled by crash-consistency runs; 0 otherwise).
    pub lines_dirty: u64,
    /// Cache lines with a write-back in the write-pending queue at the
    /// reporting instant.
    pub lines_in_wpq: u64,
    /// Cache lines durable (write-back completed) at the reporting
    /// instant.
    pub lines_durable: u64,
    /// Interposed atomic operations observed (After-phase events; 0
    /// unless the workload uses simulated atomics).
    pub atomic_ops: u64,
    /// Successful compare-exchanges that observed another thread's
    /// publication — the lock-free analogue of a mutex release→acquire
    /// hand-off edge.
    pub cas_handoffs: u64,
    /// Virtual time this thread spent floored behind other threads'
    /// atomic publications (the visibility stall charged at hand-off
    /// edges).
    pub cas_handoff_wait: Duration,
    /// Share of the computed epoch delay contributed by the asymmetric
    /// write term (store-side Eq. 2 over `RESOURCE_STALLS:SB`). Zero —
    /// and absent from the JSON — unless the target sets
    /// `write_latency_ns`.
    pub write_term: Duration,
}

impl ThreadStats {
    /// Total epochs closed.
    pub fn epochs(&self) -> u64 {
        self.epochs_monitor
            + self.epochs_lock
            + self.epochs_unlock
            + self.epochs_notify
            + self.epochs_barrier
            + self.epochs_atomic
            + self.epochs_exit
    }

    /// Renders the per-thread accounting as a JSON object.
    ///
    /// The encoding is hand-rolled (the workspace vendors no serde):
    /// every field is a JSON number; virtual durations are exported as
    /// exact integer picoseconds (`*_ps` keys). The output is
    /// deterministic — keys in declaration order, no whitespace
    /// variation — so structured runs can be byte-compared across hosts
    /// and job counts.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            concat!(
                "{{\"epochs\":{},\"epochs_monitor\":{},\"epochs_lock\":{},",
                "\"epochs_unlock\":{},\"epochs_notify\":{},\"epochs_barrier\":{},",
                "\"epochs_exit\":{},\"skipped_min_epoch\":{},\"injected_ps\":{},",
                "\"overhead_ps\":{},\"carried_overhead_ps\":{},\"pflush_delay_ps\":{},",
                "\"pflushes\":{},\"lock_wait_ns\":{},\"lock_acquisitions\":{},",
                "\"lines_dirty\":{},\"lines_in_wpq\":{},\"lines_durable\":{}"
            ),
            self.epochs(),
            self.epochs_monitor,
            self.epochs_lock,
            self.epochs_unlock,
            self.epochs_notify,
            self.epochs_barrier,
            self.epochs_exit,
            self.skipped_min_epoch,
            self.injected.as_ps(),
            self.overhead.as_ps(),
            self.carried_overhead.as_ps(),
            self.pflush_delay.as_ps(),
            self.pflushes,
            self.lock_wait_ns,
            self.lock_acquisitions,
            self.lines_dirty,
            self.lines_in_wpq,
            self.lines_durable,
        );
        // Atomics fields appear only when the workload touched simulated
        // atomics, so mutex-only runs stay byte-identical to the
        // pre-atomics schema (the same rule as the `degradation` block
        // in [`QuartzStats::to_json_with`]).
        if self.epochs_atomic != 0
            || self.atomic_ops != 0
            || self.cas_handoffs != 0
            || !self.cas_handoff_wait.is_zero()
        {
            out.push_str(&format!(
                concat!(
                    ",\"epochs_atomic\":{},\"atomic_ops\":{},",
                    "\"cas_handoffs\":{},\"cas_handoff_wait_ps\":{}"
                ),
                self.epochs_atomic,
                self.atomic_ops,
                self.cas_handoffs,
                self.cas_handoff_wait.as_ps(),
            ));
        }
        // Same conditional-schema rule for the asymmetric write model:
        // symmetric runs never compute a write term and keep their
        // pre-asymmetry JSON byte for byte.
        if !self.write_term.is_zero() {
            out.push_str(&format!(",\"write_term_ps\":{}", self.write_term.as_ps()));
        }
        out.push('}');
        out
    }
}

/// Accounting of every graceful-degradation action the emulator took in
/// response to platform misbehaviour (injected or real): transient
/// counter-read failures, counter wraps, model-output clamps, forced
/// re-calibrations, thermal readback-verify retries, and monitor-timer
/// perturbations. All zero on a healthy platform.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DegradationStats {
    /// Transient `rdpmc` failures observed (each triggers a retry).
    pub pmu_read_faults: u64,
    /// Successful retries after a transient failure.
    pub pmu_read_retries: u64,
    /// Counter reads abandoned after the retry budget; the epoch reused
    /// its previous snapshot (zero delta) instead of panicking.
    pub pmu_reads_abandoned: u64,
    /// 48-bit counter wraps detected by the wrap-aware delta math.
    pub counter_wraps: u64,
    /// Derived `LDM_STALL` values clamped to the epoch cycle budget.
    pub stall_clamps: u64,
    /// Injected delays clamped to the epoch's maximum meaningful delay.
    pub delay_clamps: u64,
    /// Forced counter re-calibrations (snapshot re-reads) after a clamp.
    pub recalibrations: u64,
    /// Thermal writes whose readback-verify found a wrong value.
    pub thermal_write_faults: u64,
    /// Thermal re-program attempts issued by the verify loop.
    pub thermal_retries: u64,
    /// Thermal targets accepted degraded after the retry budget.
    pub thermal_gave_up: u64,
    /// Monitor-timer firings dropped by the platform.
    pub timer_drops: u64,
    /// Monitor-timer firings deferred (late) by the platform.
    pub timer_deferrals: u64,
    /// Stale topology reads that excluded a live core at registration.
    pub topology_stale_reads: u64,
    /// Topology refreshes performed before registration succeeded.
    pub topology_refreshes: u64,
    /// Per-thread slots reaped after a contained simulation failure
    /// (deadlock/panic/hang): the orphaned state was cleared so the
    /// shared runtime stays healthy for subsequent runs in-process.
    pub orphan_slots_reaped: u64,
    /// Epoch-state inconsistencies found by the reaper's sanity check: a
    /// dead thread's slot left mid-epoch with undrained pending flushes,
    /// or a slot lock still held by an unreachable (detached) thread.
    pub epoch_state_anomalies: u64,
}

impl DegradationStats {
    /// Total faults *observed* (not the degradation actions taken).
    pub fn total_faults(&self) -> u64 {
        self.pmu_read_faults
            + self.counter_wraps
            + self.stall_clamps
            + self.delay_clamps
            + self.thermal_write_faults
            + self.timer_drops
            + self.timer_deferrals
            + self.topology_stale_reads
            + self.epoch_state_anomalies
    }

    /// Renders the block as a JSON object (hand-rolled, deterministic,
    /// keys in declaration order — see [`ThreadStats::to_json`]).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"total_faults\":{},\"pmu_read_faults\":{},\"pmu_read_retries\":{},",
                "\"pmu_reads_abandoned\":{},\"counter_wraps\":{},\"stall_clamps\":{},",
                "\"delay_clamps\":{},\"recalibrations\":{},\"thermal_write_faults\":{},",
                "\"thermal_retries\":{},\"thermal_gave_up\":{},\"timer_drops\":{},",
                "\"timer_deferrals\":{},\"topology_stale_reads\":{},\"topology_refreshes\":{},",
                "\"orphan_slots_reaped\":{},\"epoch_state_anomalies\":{}}}"
            ),
            self.total_faults(),
            self.pmu_read_faults,
            self.pmu_read_retries,
            self.pmu_reads_abandoned,
            self.counter_wraps,
            self.stall_clamps,
            self.delay_clamps,
            self.recalibrations,
            self.thermal_write_faults,
            self.thermal_retries,
            self.thermal_gave_up,
            self.timer_drops,
            self.timer_deferrals,
            self.topology_stale_reads,
            self.topology_refreshes,
            self.orphan_slots_reaped,
            self.epoch_state_anomalies,
        )
    }
}

/// Lock-free accumulator behind [`DegradationStats`]: degradation events
/// are recorded from the interposition hot path and the monitor timer,
/// so they must not reintroduce the global-lock contention the sharded
/// registry removed.
#[derive(Debug, Default)]
pub(crate) struct DegradationCounters {
    pub pmu_read_faults: AtomicU64,
    pub pmu_read_retries: AtomicU64,
    pub pmu_reads_abandoned: AtomicU64,
    pub counter_wraps: AtomicU64,
    pub stall_clamps: AtomicU64,
    pub delay_clamps: AtomicU64,
    pub recalibrations: AtomicU64,
    pub thermal_write_faults: AtomicU64,
    pub thermal_retries: AtomicU64,
    pub thermal_gave_up: AtomicU64,
    pub timer_drops: AtomicU64,
    pub timer_deferrals: AtomicU64,
    pub topology_stale_reads: AtomicU64,
    pub topology_refreshes: AtomicU64,
    pub orphan_slots_reaped: AtomicU64,
    pub epoch_state_anomalies: AtomicU64,
}

impl DegradationCounters {
    pub(crate) fn snapshot(&self) -> DegradationStats {
        let ld = |a: &AtomicU64| a.load(Ordering::Relaxed);
        DegradationStats {
            pmu_read_faults: ld(&self.pmu_read_faults),
            pmu_read_retries: ld(&self.pmu_read_retries),
            pmu_reads_abandoned: ld(&self.pmu_reads_abandoned),
            counter_wraps: ld(&self.counter_wraps),
            stall_clamps: ld(&self.stall_clamps),
            delay_clamps: ld(&self.delay_clamps),
            recalibrations: ld(&self.recalibrations),
            thermal_write_faults: ld(&self.thermal_write_faults),
            thermal_retries: ld(&self.thermal_retries),
            thermal_gave_up: ld(&self.thermal_gave_up),
            timer_drops: ld(&self.timer_drops),
            timer_deferrals: ld(&self.timer_deferrals),
            topology_stale_reads: ld(&self.topology_stale_reads),
            topology_refreshes: ld(&self.topology_refreshes),
            orphan_slots_reaped: ld(&self.orphan_slots_reaped),
            epoch_state_anomalies: ld(&self.epoch_state_anomalies),
        }
    }
}

/// One closed epoch, as recorded when tracing is enabled
/// ([`crate::Quartz::set_epoch_trace`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EpochRecord {
    /// Thread the epoch belonged to.
    pub thread: usize,
    /// Why it closed.
    pub reason: EpochReason,
    /// Virtual instant the epoch closed (counter-read point).
    pub closed_at: quartz_platform::time::SimTime,
    /// Stall-cycle delta observed over the epoch.
    pub stall_cycles: u64,
    /// LLC-miss delta observed over the epoch.
    pub misses: u64,
    /// Delay the model computed.
    pub computed_delay: Duration,
    /// Delay actually injected after overhead amortization.
    pub injected: Duration,
}

/// Aggregated emulator statistics for one run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QuartzStats {
    /// Threads registered with the monitor.
    pub threads: u64,
    /// Library initialization time (virtual; not charged to workload).
    pub init_time: Duration,
    /// Sum over threads.
    pub totals: ThreadStats,
    /// Graceful-degradation accounting (all zero on a healthy platform).
    pub degradation: DegradationStats,
}

impl QuartzStats {
    /// Whether every cycle of emulator overhead was hidden inside
    /// injected delays. When `false`, the workload ran slower than the
    /// model intended — the paper's feedback suggests increasing the
    /// epoch size or reducing synchronization frequency.
    pub fn overhead_fully_amortized(&self) -> bool {
        self.totals.carried_overhead.is_zero()
    }

    /// Overhead as a fraction of injected delay (0 when nothing was
    /// injected).
    pub fn overhead_ratio(&self) -> f64 {
        let injected = self.totals.injected.as_ns_f64();
        if injected <= 0.0 {
            return 0.0;
        }
        self.totals.overhead.as_ns_f64() / injected
    }

    /// Renders the aggregated statistics as a JSON object (see
    /// [`ThreadStats::to_json`] for the encoding rules). `totals` nests
    /// the per-thread aggregate; `per_thread`, when provided, nests one
    /// object per registered thread in registration order — pass the
    /// result of [`crate::Quartz::per_thread_stats`] to export the full
    /// breakdown, or an empty slice to omit it.
    pub fn to_json_with(&self, per_thread: &[ThreadStats]) -> String {
        let mut out = format!(
            "{{\"threads\":{},\"init_time_ps\":{},\"overhead_fully_amortized\":{},\"totals\":{}",
            self.threads,
            self.init_time.as_ps(),
            self.overhead_fully_amortized(),
            self.totals.to_json(),
        );
        // Emitted only when some degradation occurred: healthy runs stay
        // byte-identical to the pre-fault-injection schema, and any
        // fault-handling activity is guaranteed to surface.
        if self.degradation != DegradationStats::default() {
            out.push_str(",\"degradation\":");
            out.push_str(&self.degradation.to_json());
        }
        if !per_thread.is_empty() {
            out.push_str(",\"per_thread\":[");
            for (i, t) in per_thread.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&t.to_json());
            }
            out.push(']');
        }
        out.push('}');
        out
    }

    /// Renders the aggregated statistics as a JSON object without the
    /// per-thread breakdown.
    pub fn to_json(&self) -> String {
        self.to_json_with(&[])
    }
}

impl fmt::Display for QuartzStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "quartz statistics:")?;
        writeln!(f, "  threads registered : {}", self.threads)?;
        writeln!(f, "  init time          : {}", self.init_time)?;
        // The `atomic` bucket appears only when the workload used
        // simulated atomics, keeping mutex-only output byte-identical.
        let atomic_part = if self.totals.epochs_atomic > 0 {
            format!("atomic {}, ", self.totals.epochs_atomic)
        } else {
            String::new()
        };
        writeln!(
            f,
            "  epochs             : {} (monitor {}, lock {}, unlock {}, notify {}, barrier {}, {}exit {})",
            self.totals.epochs(),
            self.totals.epochs_monitor,
            self.totals.epochs_lock,
            self.totals.epochs_unlock,
            self.totals.epochs_notify,
            self.totals.epochs_barrier,
            atomic_part,
            self.totals.epochs_exit,
        )?;
        writeln!(
            f,
            "  skipped (min epoch): {}",
            self.totals.skipped_min_epoch
        )?;
        writeln!(f, "  injected delay     : {}", self.totals.injected)?;
        if !self.totals.write_term.is_zero() {
            writeln!(f, "  write term (asym)  : {}", self.totals.write_term)?;
        }
        writeln!(f, "  epoch overhead     : {}", self.totals.overhead)?;
        writeln!(
            f,
            "  pflush delay       : {} ({} flushes)",
            self.totals.pflush_delay, self.totals.pflushes
        )?;
        writeln!(
            f,
            "  state lock (host)  : {} acquisitions, {} ns waited",
            self.totals.lock_acquisitions, self.totals.lock_wait_ns
        )?;
        if self.totals.atomic_ops > 0 {
            writeln!(
                f,
                "  atomics            : {} ops, {} CAS hand-offs, {} visibility stall",
                self.totals.atomic_ops, self.totals.cas_handoffs, self.totals.cas_handoff_wait
            )?;
        }
        if self.degradation != DegradationStats::default() {
            let d = &self.degradation;
            writeln!(
                f,
                "  degradation        : {} faults (pmu {}, wraps {}, clamps {}+{}, thermal {}, timer {}+{}, topology {}), {} recalibrations",
                d.total_faults(),
                d.pmu_read_faults,
                d.counter_wraps,
                d.stall_clamps,
                d.delay_clamps,
                d.thermal_write_faults,
                d.timer_drops,
                d.timer_deferrals,
                d.topology_stale_reads,
                d.recalibrations,
            )?;
            if d.orphan_slots_reaped > 0 || d.epoch_state_anomalies > 0 {
                writeln!(
                    f,
                    "  failure reaping    : {} orphan slot(s) reaped, {} epoch-state anomalies",
                    d.orphan_slots_reaped, d.epoch_state_anomalies,
                )?;
            }
        }
        if self.overhead_fully_amortized() {
            writeln!(f, "  overhead fully amortized into injected delays")?;
        } else {
            writeln!(
                f,
                "  WARNING: {} of overhead not amortized — consider a larger epoch",
                self.totals.carried_overhead
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_totals() {
        let t = ThreadStats {
            epochs_monitor: 2,
            epochs_lock: 2,
            epochs_unlock: 3,
            epochs_notify: 1,
            epochs_exit: 1,
            ..ThreadStats::default()
        };
        assert_eq!(t.epochs(), 9);
    }

    #[test]
    fn amortization_flag() {
        let mut s = QuartzStats::default();
        assert!(s.overhead_fully_amortized());
        s.totals.carried_overhead = Duration::from_ns(5);
        assert!(!s.overhead_fully_amortized());
    }

    #[test]
    fn overhead_ratio() {
        let mut s = QuartzStats::default();
        assert_eq!(s.overhead_ratio(), 0.0);
        s.totals.injected = Duration::from_ns(1000);
        s.totals.overhead = Duration::from_ns(40);
        assert!((s.overhead_ratio() - 0.04).abs() < 1e-12);
    }

    #[test]
    fn thread_stats_json_exports_every_field() {
        let t = ThreadStats {
            epochs_monitor: 1,
            epochs_lock: 2,
            injected: Duration::from_ns(3),
            pflushes: 4,
            lock_acquisitions: 5,
            ..ThreadStats::default()
        };
        let j = t.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"epochs\":3"));
        assert!(j.contains("\"epochs_monitor\":1"));
        assert!(j.contains("\"injected_ps\":3000"));
        assert!(j.contains("\"pflushes\":4"));
        assert!(j.contains("\"lock_acquisitions\":5"));
        // Deterministic encoding: same value, same bytes.
        assert_eq!(j, t.clone().to_json());
    }

    #[test]
    fn quartz_stats_json_nests_totals_and_threads() {
        let mut s = QuartzStats {
            threads: 2,
            ..QuartzStats::default()
        };
        s.totals.epochs_exit = 2;
        let flat = s.to_json();
        assert!(flat.contains("\"threads\":2"));
        assert!(flat.contains("\"totals\":{"));
        assert!(flat.contains("\"overhead_fully_amortized\":true"));
        assert!(!flat.contains("per_thread"));
        let per = vec![ThreadStats::default(), ThreadStats::default()];
        let nested = s.to_json_with(&per);
        assert!(nested.contains("\"per_thread\":[{"));
        assert_eq!(nested.matches("\"lock_wait_ns\"").count(), 3);
    }

    #[test]
    fn degradation_block_appears_only_under_faults() {
        let mut s = QuartzStats::default();
        // Healthy run: schema is byte-identical to the pre-fault era.
        assert!(!s.to_json().contains("degradation"));
        assert!(!s.to_string().contains("degradation"));
        s.degradation.pmu_read_faults = 2;
        s.degradation.pmu_read_retries = 2;
        s.degradation.counter_wraps = 1;
        s.degradation.stall_clamps = 1;
        s.degradation.recalibrations = 1;
        let j = s.to_json();
        assert!(j.contains("\"degradation\":{\"total_faults\":4,"));
        assert!(j.contains("\"pmu_read_retries\":2"));
        assert!(j.contains("\"counter_wraps\":1"));
        assert!(j.contains("\"recalibrations\":1"));
        assert!(s.to_string().contains("degradation"));
        // Pure-action degradation (retry bookkeeping with no observed
        // fault) still surfaces the block.
        let mut s2 = QuartzStats::default();
        s2.degradation.thermal_retries = 3;
        assert_eq!(s2.degradation.total_faults(), 0);
        assert!(s2.to_json().contains("\"thermal_retries\":3"));
    }

    #[test]
    fn reaper_fields_surface_in_json_display_and_totals() {
        let mut s = QuartzStats::default();
        s.degradation.orphan_slots_reaped = 2;
        s.degradation.epoch_state_anomalies = 1;
        // Anomalies are observed faults; reaped slots are actions.
        assert_eq!(s.degradation.total_faults(), 1);
        let j = s.to_json();
        assert!(j.contains("\"orphan_slots_reaped\":2"), "{j}");
        assert!(j.contains("\"epoch_state_anomalies\":1"), "{j}");
        let out = s.to_string();
        assert!(out.contains("2 orphan slot(s) reaped"), "{out}");
    }

    #[test]
    fn degradation_counters_snapshot_roundtrip() {
        let c = DegradationCounters::default();
        c.pmu_read_faults.store(7, Ordering::Relaxed);
        c.timer_drops.store(3, Ordering::Relaxed);
        c.topology_refreshes.store(2, Ordering::Relaxed);
        let s = c.snapshot();
        assert_eq!(s.pmu_read_faults, 7);
        assert_eq!(s.timer_drops, 3);
        assert_eq!(s.topology_refreshes, 2);
        assert_eq!(s.total_faults(), 10);
    }

    #[test]
    fn atomics_fields_appear_only_when_used() {
        // Mutex-only runs keep the pre-atomics schema byte-for-byte.
        assert!(!ThreadStats::default().to_json().contains("atomic"));
        assert!(!QuartzStats::default().to_string().contains("atomics"));
        let mut s = QuartzStats::default();
        s.totals.epochs_atomic = 2;
        s.totals.atomic_ops = 9;
        s.totals.cas_handoffs = 3;
        s.totals.cas_handoff_wait = Duration::from_ns(70);
        let j = s.totals.to_json();
        assert!(j.contains("\"epochs\":2"), "{j}");
        assert!(j.contains("\"epochs_atomic\":2"), "{j}");
        assert!(j.contains("\"atomic_ops\":9"), "{j}");
        assert!(j.contains("\"cas_handoffs\":3"), "{j}");
        assert!(j.contains("\"cas_handoff_wait_ps\":70000"), "{j}");
        let out = s.to_string();
        assert!(out.contains("barrier 0, atomic 2, exit 0"), "{out}");
        assert!(out.contains("9 ops, 3 CAS hand-offs"), "{out}");
    }

    #[test]
    fn write_term_appears_only_when_asymmetric() {
        // Symmetric runs keep the pre-asymmetry schema byte-for-byte.
        assert!(!ThreadStats::default().to_json().contains("write_term"));
        assert!(!QuartzStats::default().to_string().contains("write term"));
        let mut s = QuartzStats::default();
        s.totals.write_term = Duration::from_ns(42);
        assert!(s.totals.to_json().contains("\"write_term_ps\":42000"));
        assert!(s.to_string().contains("write term (asym)"));
    }

    #[test]
    fn display_mentions_amortization() {
        let s = QuartzStats::default();
        let out = s.to_string();
        assert!(out.contains("amortized"));
        let mut s2 = s;
        s2.totals.carried_overhead = Duration::from_ns(7);
        assert!(s2.to_string().contains("WARNING"));
    }
}
