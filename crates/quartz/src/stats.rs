//! Emulator statistics and tuning feedback.
//!
//! The paper augments Quartz with "specially designed statistics" that
//! report whether the epoch-processing overhead was amortized entirely
//! and whether adjusting the epoch size may improve accuracy (§3.2).

use std::fmt;

use quartz_platform::time::Duration;

/// Why an epoch was closed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EpochReason {
    /// The monitor signalled the thread (max epoch exceeded).
    MonitorSignal,
    /// A mutex acquire interposition.
    MutexLock,
    /// A mutex release interposition.
    MutexUnlock,
    /// A condition-variable notify interposition.
    CondNotify,
    /// A barrier-entry interposition (OpenMP-style synchronization).
    Barrier,
    /// The thread exited.
    ThreadExit,
}

/// Per-thread accounting, aggregated into [`QuartzStats`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ThreadStats {
    /// Epochs closed by the monitor.
    pub epochs_monitor: u64,
    /// Epochs closed at mutex acquires.
    pub epochs_lock: u64,
    /// Epochs closed at mutex releases.
    pub epochs_unlock: u64,
    /// Epochs closed at condvar notifies.
    pub epochs_notify: u64,
    /// Epochs closed at barrier entries.
    pub epochs_barrier: u64,
    /// Epochs closed at thread exit.
    pub epochs_exit: u64,
    /// Interposition points skipped because the epoch was younger than
    /// the minimum epoch length.
    pub skipped_min_epoch: u64,
    /// Total delay injected.
    pub injected: Duration,
    /// Total epoch-processing overhead (counter reads + model).
    pub overhead: Duration,
    /// Overhead not yet amortized against injected delays.
    pub carried_overhead: Duration,
    /// Delay injected through `pflush` write emulation.
    pub pflush_delay: Duration,
    /// Number of `pflush` calls.
    pub pflushes: u64,
    /// Host-side nanoseconds spent *waiting* to acquire this thread's
    /// slot lock (contention with aggregation/diagnostics). Pure
    /// emulator-implementation telemetry — not virtual time.
    pub lock_wait_ns: u64,
    /// Slot-lock acquisitions (one per interposition event that touched
    /// shared per-thread state).
    pub lock_acquisitions: u64,
    /// Cache lines still dirty in the cache domain at the reporting
    /// instant (filled by crash-consistency runs; 0 otherwise).
    pub lines_dirty: u64,
    /// Cache lines with a write-back in the write-pending queue at the
    /// reporting instant.
    pub lines_in_wpq: u64,
    /// Cache lines durable (write-back completed) at the reporting
    /// instant.
    pub lines_durable: u64,
}

impl ThreadStats {
    /// Total epochs closed.
    pub fn epochs(&self) -> u64 {
        self.epochs_monitor
            + self.epochs_lock
            + self.epochs_unlock
            + self.epochs_notify
            + self.epochs_barrier
            + self.epochs_exit
    }

    /// Renders the per-thread accounting as a JSON object.
    ///
    /// The encoding is hand-rolled (the workspace vendors no serde):
    /// every field is a JSON number; virtual durations are exported as
    /// exact integer picoseconds (`*_ps` keys). The output is
    /// deterministic — keys in declaration order, no whitespace
    /// variation — so structured runs can be byte-compared across hosts
    /// and job counts.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"epochs\":{},\"epochs_monitor\":{},\"epochs_lock\":{},",
                "\"epochs_unlock\":{},\"epochs_notify\":{},\"epochs_barrier\":{},",
                "\"epochs_exit\":{},\"skipped_min_epoch\":{},\"injected_ps\":{},",
                "\"overhead_ps\":{},\"carried_overhead_ps\":{},\"pflush_delay_ps\":{},",
                "\"pflushes\":{},\"lock_wait_ns\":{},\"lock_acquisitions\":{},",
                "\"lines_dirty\":{},\"lines_in_wpq\":{},\"lines_durable\":{}}}"
            ),
            self.epochs(),
            self.epochs_monitor,
            self.epochs_lock,
            self.epochs_unlock,
            self.epochs_notify,
            self.epochs_barrier,
            self.epochs_exit,
            self.skipped_min_epoch,
            self.injected.as_ps(),
            self.overhead.as_ps(),
            self.carried_overhead.as_ps(),
            self.pflush_delay.as_ps(),
            self.pflushes,
            self.lock_wait_ns,
            self.lock_acquisitions,
            self.lines_dirty,
            self.lines_in_wpq,
            self.lines_durable,
        )
    }
}

/// One closed epoch, as recorded when tracing is enabled
/// ([`crate::Quartz::set_epoch_trace`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EpochRecord {
    /// Thread the epoch belonged to.
    pub thread: usize,
    /// Why it closed.
    pub reason: EpochReason,
    /// Virtual instant the epoch closed (counter-read point).
    pub closed_at: quartz_platform::time::SimTime,
    /// Stall-cycle delta observed over the epoch.
    pub stall_cycles: u64,
    /// LLC-miss delta observed over the epoch.
    pub misses: u64,
    /// Delay the model computed.
    pub computed_delay: Duration,
    /// Delay actually injected after overhead amortization.
    pub injected: Duration,
}

/// Aggregated emulator statistics for one run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QuartzStats {
    /// Threads registered with the monitor.
    pub threads: u64,
    /// Library initialization time (virtual; not charged to workload).
    pub init_time: Duration,
    /// Sum over threads.
    pub totals: ThreadStats,
}

impl QuartzStats {
    /// Whether every cycle of emulator overhead was hidden inside
    /// injected delays. When `false`, the workload ran slower than the
    /// model intended — the paper's feedback suggests increasing the
    /// epoch size or reducing synchronization frequency.
    pub fn overhead_fully_amortized(&self) -> bool {
        self.totals.carried_overhead.is_zero()
    }

    /// Overhead as a fraction of injected delay (0 when nothing was
    /// injected).
    pub fn overhead_ratio(&self) -> f64 {
        let injected = self.totals.injected.as_ns_f64();
        if injected <= 0.0 {
            return 0.0;
        }
        self.totals.overhead.as_ns_f64() / injected
    }

    /// Renders the aggregated statistics as a JSON object (see
    /// [`ThreadStats::to_json`] for the encoding rules). `totals` nests
    /// the per-thread aggregate; `per_thread`, when provided, nests one
    /// object per registered thread in registration order — pass the
    /// result of [`crate::Quartz::per_thread_stats`] to export the full
    /// breakdown, or an empty slice to omit it.
    pub fn to_json_with(&self, per_thread: &[ThreadStats]) -> String {
        let mut out = format!(
            "{{\"threads\":{},\"init_time_ps\":{},\"overhead_fully_amortized\":{},\"totals\":{}",
            self.threads,
            self.init_time.as_ps(),
            self.overhead_fully_amortized(),
            self.totals.to_json(),
        );
        if !per_thread.is_empty() {
            out.push_str(",\"per_thread\":[");
            for (i, t) in per_thread.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&t.to_json());
            }
            out.push(']');
        }
        out.push('}');
        out
    }

    /// Renders the aggregated statistics as a JSON object without the
    /// per-thread breakdown.
    pub fn to_json(&self) -> String {
        self.to_json_with(&[])
    }
}

impl fmt::Display for QuartzStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "quartz statistics:")?;
        writeln!(f, "  threads registered : {}", self.threads)?;
        writeln!(f, "  init time          : {}", self.init_time)?;
        writeln!(
            f,
            "  epochs             : {} (monitor {}, lock {}, unlock {}, notify {}, barrier {}, exit {})",
            self.totals.epochs(),
            self.totals.epochs_monitor,
            self.totals.epochs_lock,
            self.totals.epochs_unlock,
            self.totals.epochs_notify,
            self.totals.epochs_barrier,
            self.totals.epochs_exit,
        )?;
        writeln!(
            f,
            "  skipped (min epoch): {}",
            self.totals.skipped_min_epoch
        )?;
        writeln!(f, "  injected delay     : {}", self.totals.injected)?;
        writeln!(f, "  epoch overhead     : {}", self.totals.overhead)?;
        writeln!(
            f,
            "  pflush delay       : {} ({} flushes)",
            self.totals.pflush_delay, self.totals.pflushes
        )?;
        writeln!(
            f,
            "  state lock (host)  : {} acquisitions, {} ns waited",
            self.totals.lock_acquisitions, self.totals.lock_wait_ns
        )?;
        if self.overhead_fully_amortized() {
            writeln!(f, "  overhead fully amortized into injected delays")?;
        } else {
            writeln!(
                f,
                "  WARNING: {} of overhead not amortized — consider a larger epoch",
                self.totals.carried_overhead
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_totals() {
        let t = ThreadStats {
            epochs_monitor: 2,
            epochs_lock: 2,
            epochs_unlock: 3,
            epochs_notify: 1,
            epochs_exit: 1,
            ..ThreadStats::default()
        };
        assert_eq!(t.epochs(), 9);
    }

    #[test]
    fn amortization_flag() {
        let mut s = QuartzStats::default();
        assert!(s.overhead_fully_amortized());
        s.totals.carried_overhead = Duration::from_ns(5);
        assert!(!s.overhead_fully_amortized());
    }

    #[test]
    fn overhead_ratio() {
        let mut s = QuartzStats::default();
        assert_eq!(s.overhead_ratio(), 0.0);
        s.totals.injected = Duration::from_ns(1000);
        s.totals.overhead = Duration::from_ns(40);
        assert!((s.overhead_ratio() - 0.04).abs() < 1e-12);
    }

    #[test]
    fn thread_stats_json_exports_every_field() {
        let t = ThreadStats {
            epochs_monitor: 1,
            epochs_lock: 2,
            injected: Duration::from_ns(3),
            pflushes: 4,
            lock_acquisitions: 5,
            ..ThreadStats::default()
        };
        let j = t.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"epochs\":3"));
        assert!(j.contains("\"epochs_monitor\":1"));
        assert!(j.contains("\"injected_ps\":3000"));
        assert!(j.contains("\"pflushes\":4"));
        assert!(j.contains("\"lock_acquisitions\":5"));
        // Deterministic encoding: same value, same bytes.
        assert_eq!(j, t.clone().to_json());
    }

    #[test]
    fn quartz_stats_json_nests_totals_and_threads() {
        let mut s = QuartzStats {
            threads: 2,
            ..QuartzStats::default()
        };
        s.totals.epochs_exit = 2;
        let flat = s.to_json();
        assert!(flat.contains("\"threads\":2"));
        assert!(flat.contains("\"totals\":{"));
        assert!(flat.contains("\"overhead_fully_amortized\":true"));
        assert!(!flat.contains("per_thread"));
        let per = vec![ThreadStats::default(), ThreadStats::default()];
        let nested = s.to_json_with(&per);
        assert!(nested.contains("\"per_thread\":[{"));
        assert_eq!(nested.matches("\"lock_wait_ns\"").count(), 3);
    }

    #[test]
    fn display_mentions_amortization() {
        let s = QuartzStats::default();
        let out = s.to_string();
        assert!(out.contains("amortized"));
        let mut s2 = s;
        s2.totals.carried_overhead = Duration::from_ns(7);
        assert!(s2.to_string().contains("WARNING"));
    }
}
