//! End-to-end emulator tests (the validation methodology of paper §4.3
//! in miniature: Conf_1 = local memory + Quartz vs Conf_2 = physically
//! remote memory, same workload).

use std::sync::Arc;

use quartz_memsim::{MemSimConfig, MemorySystem};
use quartz_platform::time::{Duration, SimTime};
use quartz_platform::{Architecture, NodeId, Platform, PlatformConfig};
use quartz_threadsim::{Engine, ThreadCtx};

use crate::config::{LatencyModelKind, MemoryMode, NvmTarget, QuartzConfig};
use crate::runtime::Quartz;
use crate::QuartzError;

fn machine(arch: Architecture, perfect: bool) -> Arc<MemorySystem> {
    let mut pc = PlatformConfig::new(arch);
    if perfect {
        pc = pc.with_perfect_counters();
    }
    Arc::new(MemorySystem::new(
        Platform::new(pc),
        MemSimConfig::default().without_jitter(),
    ))
}

/// Pointer-chases `accesses` lines on `node`; returns elapsed virtual ns.
fn chase(ctx: &mut ThreadCtx, node: NodeId, accesses: u64) -> f64 {
    let l3 = ctx.mem().config().l3.size_bytes;
    let lines = 8 * l3 / 64;
    let buf = ctx.alloc_on(node, lines * 64);
    let mut idx = 1u64;
    let mut next = || {
        idx = (idx.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1)) % lines;
        idx
    };
    for _ in 0..128 {
        let i = next();
        ctx.load(buf.offset_by(i * 64));
    }
    let t0 = ctx.now();
    for _ in 0..accesses {
        let i = next();
        ctx.load(buf.offset_by(i * 64));
    }
    ctx.now().saturating_duration_since(t0).as_ns_f64()
}

#[test]
fn emulated_local_matches_physical_remote() {
    let arch = Architecture::IvyBridge;
    let params = arch.params();

    // Conf_2: run on remote memory, no emulator.
    let conf2 = Engine::new(machine(arch, true));
    let remote = Arc::new(parking_lot::Mutex::new(0.0));
    let r = Arc::clone(&remote);
    conf2.run(move |ctx| {
        *r.lock() = chase(ctx, NodeId(1), 50_000);
    });

    // Conf_1: run on local memory under Quartz emulating remote latency.
    let mem = machine(arch, true);
    let conf1 = Engine::new(Arc::clone(&mem));
    let target = NvmTarget::new(params.remote_dram_ns.avg_ns as f64);
    let quartz = Quartz::new(
        QuartzConfig::new(target).with_max_epoch(Duration::from_us(100)),
        mem,
    )
    .unwrap();
    quartz.attach(&conf1).unwrap();
    let emulated = Arc::new(parking_lot::Mutex::new(0.0));
    let e = Arc::clone(&emulated);
    conf1.run(move |ctx| {
        *e.lock() = chase(ctx, NodeId(0), 50_000);
    });

    let remote = *remote.lock();
    let emulated = *emulated.lock();
    let err = (emulated - remote).abs() / remote;
    assert!(
        err < 0.03,
        "emulation error {:.2}% (emulated {emulated} vs remote {remote})",
        err * 100.0
    );
}

#[test]
fn emulated_latency_tracks_target() {
    // Fig. 12 in miniature: measured latency under emulation ≈ target.
    let arch = Architecture::IvyBridge;
    for target_ns in [200.0, 500.0, 1000.0] {
        let mem = machine(arch, true);
        let engine = Engine::new(Arc::clone(&mem));
        let quartz = Quartz::new(
            QuartzConfig::new(NvmTarget::new(target_ns)).with_max_epoch(Duration::from_us(100)),
            mem,
        )
        .unwrap();
        quartz.attach(&engine).unwrap();
        let out = Arc::new(parking_lot::Mutex::new(0.0));
        let o = Arc::clone(&out);
        engine.run(move |ctx| {
            let accesses = 50_000;
            *o.lock() = chase(ctx, NodeId(0), accesses) / accesses as f64;
        });
        let measured = *out.lock();
        let err = (measured - target_ns).abs() / target_ns;
        assert!(
            err < 0.05,
            "target {target_ns} ns, measured {measured:.1} ns, err {:.2}%",
            err * 100.0
        );
    }
}

#[test]
fn switched_off_injection_has_low_overhead() {
    // §3.2: emulation with injection off ≈ no emulation at all.
    let arch = Architecture::Haswell;
    let base = {
        let engine = Engine::new(machine(arch, true));
        let out = Arc::new(parking_lot::Mutex::new(0.0));
        let o = Arc::clone(&out);
        engine.run(move |ctx| {
            *o.lock() = chase(ctx, NodeId(0), 20_000);
        });
        let v = *out.lock();
        v
    };
    let off = {
        let mem = machine(arch, true);
        let engine = Engine::new(Arc::clone(&mem));
        let quartz = Quartz::new(
            QuartzConfig::new(NvmTarget::new(500.0)).without_delay_injection(),
            mem,
        )
        .unwrap();
        quartz.attach(&engine).unwrap();
        let out = Arc::new(parking_lot::Mutex::new(0.0));
        let o = Arc::clone(&out);
        engine.run(move |ctx| {
            *o.lock() = chase(ctx, NodeId(0), 20_000);
        });
        let v = *out.lock();
        v
    };
    let overhead = (off - base) / base;
    assert!(
        overhead < 0.04,
        "switched-off emulation overhead {:.2}% exceeds the paper's 4%",
        overhead * 100.0
    );
}

#[test]
fn simple_model_overinjects_under_mlp() {
    // Fig. 2 / ablation: with 8 parallel chains, Eq. 1 injects ~8x too
    // much; Eq. 2 stays accurate.
    let arch = Architecture::IvyBridge;
    let run = |model: LatencyModelKind| -> f64 {
        let mem = machine(arch, true);
        let engine = Engine::new(Arc::clone(&mem));
        let quartz = Quartz::new(
            QuartzConfig::new(NvmTarget::new(400.0))
                .with_model(model)
                .with_max_epoch(Duration::from_us(100)),
            mem,
        )
        .unwrap();
        quartz.attach(&engine).unwrap();
        let out = Arc::new(parking_lot::Mutex::new(0.0));
        let o = Arc::clone(&out);
        engine.run(move |ctx| {
            // 8 independent chains accessed as batches (MLP = 8).
            let l3 = ctx.mem().config().l3.size_bytes;
            let lines = 8 * l3 / 64;
            let buf = ctx.alloc_on(NodeId(0), lines * 64);
            let mut idxs = [0u64; 8];
            for (k, v) in idxs.iter_mut().enumerate() {
                *v = 1 + k as u64 * 7919;
            }
            let t0 = ctx.now();
            let mut batch = [quartz_memsim::Addr(0); 8];
            for _ in 0..20_000 {
                for (k, v) in idxs.iter_mut().enumerate() {
                    *v = (v.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1 + k as u64))
                        % lines;
                    batch[k] = buf.offset_by(*v * 64);
                }
                ctx.load_batch(&batch);
            }
            *o.lock() = ctx.now().saturating_duration_since(t0).as_ns_f64();
        });
        let v = *out.lock();
        v
    };
    let stall = run(LatencyModelKind::StallBased);
    let simple = run(LatencyModelKind::Simple);
    assert!(
        simple > 2.0 * stall,
        "simple model should grossly over-inject under MLP: simple {simple}, stall {stall}"
    );
}

#[test]
fn two_memory_mode_rejects_sandy_bridge() {
    let mem = machine(Architecture::SandyBridge, true);
    let err = Quartz::new(
        QuartzConfig::new(NvmTarget::new(300.0)).with_two_memory_mode(),
        mem,
    )
    .unwrap_err();
    assert!(matches!(err, QuartzError::TwoMemoryUnsupported { .. }));
}

#[test]
fn target_below_substrate_rejected() {
    let mem = machine(Architecture::Haswell, true);
    let err = Quartz::new(QuartzConfig::new(NvmTarget::new(50.0)), mem).unwrap_err();
    assert!(matches!(err, QuartzError::TargetFasterThanSubstrate { .. }));
}

#[test]
fn two_memory_leaves_dram_untouched_and_slows_nvm() {
    let arch = Architecture::Haswell;
    let params = arch.params();
    let mem = machine(arch, true);
    let engine = Engine::new(Arc::clone(&mem));
    let quartz = Quartz::new(
        QuartzConfig::new(NvmTarget::new(600.0))
            .with_two_memory_mode()
            .with_max_epoch(Duration::from_us(100)),
        Arc::clone(&mem),
    )
    .unwrap();
    assert_eq!(quartz.nvm_node(), NodeId(1));
    quartz.attach(&engine).unwrap();
    let out = Arc::new(parking_lot::Mutex::new((0.0, 0.0)));
    let o = Arc::clone(&out);
    let q = Arc::clone(&quartz);
    engine.run(move |ctx| {
        // Phase 1: DRAM-only chase.
        let n = 50_000u64;
        let dram_ns = chase(ctx, NodeId(0), n) / n as f64;
        // Phase 2: NVM-only chase (pmalloc side).
        let _ = &q;
        let nvm_ns = chase(ctx, NodeId(1), n) / n as f64;
        *o.lock() = (dram_ns, nvm_ns);
    });
    let (dram_ns, nvm_ns) = *out.lock();
    // Local accesses keep (roughly) local latency. The epoch model may
    // smear a small share of NVM delay over the boundary epochs.
    assert!(
        (dram_ns - params.local_dram_ns.avg_ns as f64).abs() < 25.0,
        "local DRAM latency ~unchanged: {dram_ns}"
    );
    let err = (nvm_ns - 600.0).abs() / 600.0;
    assert!(err < 0.08, "virtual NVM at ~600 ns: {nvm_ns} (err {err})");
}

#[test]
fn bandwidth_target_programs_registers() {
    let mem = machine(Architecture::SandyBridge, true);
    let engine = Engine::new(Arc::clone(&mem));
    let quartz = Quartz::new(
        QuartzConfig::new(NvmTarget::new(200.0).with_bandwidth_gbps(9.6)),
        Arc::clone(&mem),
    )
    .unwrap();
    quartz.attach(&engine).unwrap();
    let thermal = mem.platform().thermal_view();
    let frac = thermal.throttle_fraction(quartz_platform::SocketId(0), 0);
    let peak = mem.config().node_peak_bw_gbps();
    assert!(((frac * peak) - 9.6).abs() < 0.1, "throttled to ~9.6 GB/s");
    engine.run(|_| {});
}

#[test]
fn pflush_injects_write_delay() {
    let mem = machine(Architecture::IvyBridge, true);
    let engine = Engine::new(Arc::clone(&mem));
    let quartz = Quartz::new(
        QuartzConfig::new(NvmTarget::new(300.0).with_write_delay_ns(450.0)),
        mem,
    )
    .unwrap();
    quartz.attach(&engine).unwrap();
    let q = Arc::clone(&quartz);
    let out = Arc::new(parking_lot::Mutex::new(0.0));
    let o = Arc::clone(&out);
    engine.run(move |ctx| {
        let buf = q.pmalloc(ctx, 1 << 16).unwrap();
        let t0 = ctx.now();
        for i in 0..100u64 {
            ctx.store(buf.offset_by(i * 64));
            q.pflush(ctx, buf.offset_by(i * 64));
        }
        *o.lock() = ctx.now().saturating_duration_since(t0).as_ns_f64();
    });
    let elapsed = *out.lock();
    // 100 serialized flushes at >= 450 ns each.
    assert!(elapsed >= 100.0 * 450.0, "pflush serialized: {elapsed}");
    let stats = quartz.stats();
    assert_eq!(stats.totals.pflushes, 100);
    assert!(stats.totals.pflush_delay >= Duration::from_ns(45_000));
}

#[test]
fn pcommit_overlaps_independent_writes() {
    let mem = machine(Architecture::IvyBridge, true);
    let engine = Engine::new(Arc::clone(&mem));
    let quartz = Quartz::new(
        QuartzConfig::new(NvmTarget::new(300.0).with_write_delay_ns(450.0)),
        mem,
    )
    .unwrap();
    quartz.attach(&engine).unwrap();
    let q = Arc::clone(&quartz);
    let out = Arc::new(parking_lot::Mutex::new(0.0));
    let o = Arc::clone(&out);
    engine.run(move |ctx| {
        let buf = q.pmalloc(ctx, 1 << 16).unwrap();
        let t0 = ctx.now();
        for batch in 0..10u64 {
            for i in 0..10u64 {
                let a = buf.offset_by((batch * 10 + i) * 64);
                ctx.store(a);
                q.pflush_opt(ctx, a);
            }
            assert_eq!(q.pending_flushes(ctx), 10);
            q.pcommit(ctx);
            assert_eq!(q.pending_flushes(ctx), 0);
        }
        *o.lock() = ctx.now().saturating_duration_since(t0).as_ns_f64();
    });
    let elapsed = *out.lock();
    // 100 writes, but only 10 barriers are serialized: way below the
    // 100 * 450 ns of the pessimistic pflush path.
    assert!(
        elapsed < 100.0 * 450.0 * 0.5,
        "pcommit batches overlap independent writes: {elapsed}"
    );
    assert!(elapsed >= 10.0 * 450.0, "each barrier still waits: {elapsed}");
}

#[test]
fn stats_report_amortization() {
    let mem = machine(Architecture::IvyBridge, true);
    let engine = Engine::new(Arc::clone(&mem));
    let quartz = Quartz::new(
        QuartzConfig::new(NvmTarget::new(400.0)).with_max_epoch(Duration::from_us(200)),
        mem,
    )
    .unwrap();
    quartz.attach(&engine).unwrap();
    engine.run(move |ctx| {
        chase(ctx, NodeId(0), 50_000);
    });
    let stats = quartz.stats();
    assert!(stats.threads >= 1);
    assert!(stats.totals.epochs() > 5, "epochs closed: {}", stats.totals.epochs());
    assert!(stats.totals.injected > Duration::ZERO);
    assert!(
        stats.overhead_fully_amortized(),
        "memory-bound run amortizes overhead: {stats}"
    );
    assert!(stats.init_time > Duration::ZERO);
}

#[test]
fn counter_fidelity_produces_family_error_ordering() {
    // With real (skewed) counters, Sandy Bridge errors exceed Ivy Bridge
    // errors — the paper's Fig. 12 family ordering.
    let measure = |arch: Architecture| -> f64 {
        let mut worst: f64 = 0.0;
        for seed in 0..3u64 {
            let platform = Platform::new(PlatformConfig::new(arch).with_fidelity_seed(seed));
            let mem = Arc::new(MemorySystem::new(
                platform,
                MemSimConfig::default().without_jitter(),
            ));
            let engine = Engine::new(Arc::clone(&mem));
            let target = 1000.0;
            let quartz = Quartz::new(
                QuartzConfig::new(NvmTarget::new(target)).with_max_epoch(Duration::from_us(20)),
                mem,
            )
            .unwrap();
            quartz.attach(&engine).unwrap();
            let out = Arc::new(parking_lot::Mutex::new(0.0));
            let o = Arc::clone(&out);
            engine.run(move |ctx| {
                let n = 30_000u64;
                *o.lock() = chase(ctx, NodeId(0), n) / n as f64;
            });
            let measured = *out.lock();
            worst = worst.max((measured - target).abs() / target);
        }
        worst
    };
    let snb = measure(Architecture::SandyBridge);
    let ivb = measure(Architecture::IvyBridge);
    assert!(snb > ivb, "SNB worst error {snb} should exceed IVB {ivb}");
    assert!(snb < 0.10, "SNB error stays in the paper's band: {snb}");
    assert!(ivb < 0.025, "IVB error stays in the paper's band: {ivb}");
}

#[test]
fn delay_propagates_through_locks() {
    // Fig. 4/13 in miniature: two threads, critical sections only. With
    // proper propagation the emulated completion time matches running on
    // remote memory.
    let arch = Architecture::IvyBridge;
    let params = arch.params();
    let cs_work = |ctx: &mut ThreadCtx, buf: quartz_memsim::Addr, idx: &mut u64, lines: u64| {
        for _ in 0..50 {
            *idx = (idx.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1)) % lines;
            ctx.load(buf.offset_by(*idx * 64));
        }
    };
    let run = |emulate: bool| -> f64 {
        let mem = machine(arch, true);
        let engine = Engine::new(Arc::clone(&mem));
        let node = if emulate { NodeId(0) } else { NodeId(1) };
        if emulate {
            let quartz = Quartz::new(
                QuartzConfig::new(NvmTarget::new(params.remote_dram_ns.avg_ns as f64))
                    .with_max_epoch(Duration::from_ms(10))
                    .with_min_epoch(Duration::from_us(10)),
                Arc::clone(&mem),
            )
            .unwrap();
            quartz.attach(&engine).unwrap();
        }
        let report = engine.run(move |ctx| {
            let m = ctx.mutex_new();
            let lines = 8 * ctx.mem().config().l3.size_bytes / 64;
            let mut kids = Vec::new();
            for k in 0..2u64 {
                kids.push(ctx.spawn(move |c| {
                    let buf = c.alloc_on(node, lines * 64);
                    let mut idx = k * 13 + 1;
                    for _ in 0..200 {
                        c.mutex_lock(m);
                        cs_work(c, buf, &mut idx, lines);
                        c.mutex_unlock(m);
                    }
                }));
            }
            for k in kids {
                ctx.join(k);
            }
        });
        report.end_time.as_ns_f64()
    };
    let actual = run(false);
    let emulated = run(true);
    let err = (emulated - actual).abs() / actual;
    assert!(
        err < 0.05,
        "multithreaded emulation error {:.2}% (emulated {emulated} vs actual {actual})",
        err * 100.0
    );
}

#[test]
fn epoch_trace_records_each_epoch() {
    let mem = machine(Architecture::IvyBridge, true);
    let engine = Engine::new(Arc::clone(&mem));
    let quartz = Quartz::new(
        QuartzConfig::new(NvmTarget::new(400.0)).with_max_epoch(Duration::from_us(50)),
        mem,
    )
    .unwrap();
    quartz.attach(&engine).unwrap();
    quartz.set_epoch_trace(true);
    engine.run(move |ctx| {
        chase(ctx, NodeId(0), 10_000);
    });
    let trace = quartz.epoch_trace();
    let stats = quartz.stats();
    assert_eq!(trace.len() as u64, stats.totals.epochs(), "one record per epoch");
    assert!(trace.len() > 5);
    // Records are causally ordered per thread and consistent with totals.
    let injected: Duration = trace.iter().map(|r| r.injected).sum();
    assert_eq!(injected, stats.totals.injected);
    for w in trace.windows(2) {
        if w[0].thread == w[1].thread {
            assert!(w[0].closed_at <= w[1].closed_at);
        }
    }
    assert!(trace.iter().all(|r| r.computed_delay >= r.injected));
    assert!(trace.iter().any(|r| r.misses > 0));
    // Disabling clears.
    quartz.set_epoch_trace(false);
    assert!(quartz.epoch_trace().is_empty());
}
