//! End-to-end emulator tests (the validation methodology of paper §4.3
//! in miniature: Conf_1 = local memory + Quartz vs Conf_2 = physically
//! remote memory, same workload).

use std::sync::Arc;

use quartz_memsim::{MemSimConfig, MemorySystem};
use quartz_platform::time::Duration;
use quartz_platform::{Architecture, NodeId, Platform, PlatformConfig};
use quartz_threadsim::{Engine, ThreadCtx};

use crate::config::{LatencyModelKind, NvmTarget, QuartzConfig};
use crate::runtime::Quartz;
use crate::QuartzError;

fn machine(arch: Architecture, perfect: bool) -> Arc<MemorySystem> {
    let mut pc = PlatformConfig::new(arch);
    if perfect {
        pc = pc.with_perfect_counters();
    }
    Arc::new(MemorySystem::new(
        Platform::new(pc),
        MemSimConfig::default().without_jitter(),
    ))
}

/// Pointer-chases `accesses` lines on `node`; returns elapsed virtual ns.
fn chase(ctx: &mut ThreadCtx, node: NodeId, accesses: u64) -> f64 {
    let l3 = ctx.mem().config().l3.size_bytes;
    let lines = 8 * l3 / 64;
    let buf = ctx.alloc_on(node, lines * 64);
    let mut idx = 1u64;
    let mut next = || {
        idx = (idx.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1)) % lines;
        idx
    };
    for _ in 0..128 {
        let i = next();
        ctx.load(buf.offset_by(i * 64));
    }
    let t0 = ctx.now();
    for _ in 0..accesses {
        let i = next();
        ctx.load(buf.offset_by(i * 64));
    }
    ctx.now().saturating_duration_since(t0).as_ns_f64()
}

#[test]
fn emulated_local_matches_physical_remote() {
    let arch = Architecture::IvyBridge;
    let params = arch.params();

    // Conf_2: run on remote memory, no emulator.
    let conf2 = Engine::new(machine(arch, true));
    let remote = Arc::new(parking_lot::Mutex::new(0.0));
    let r = Arc::clone(&remote);
    conf2.run(move |ctx| {
        *r.lock() = chase(ctx, NodeId(1), 50_000);
    });

    // Conf_1: run on local memory under Quartz emulating remote latency.
    let mem = machine(arch, true);
    let conf1 = Engine::new(Arc::clone(&mem));
    let target = NvmTarget::new(params.remote_dram_ns.avg_ns as f64);
    let quartz = Quartz::new(
        QuartzConfig::new(target).with_max_epoch(Duration::from_us(100)),
        mem,
    )
    .unwrap();
    quartz.attach(&conf1).unwrap();
    let emulated = Arc::new(parking_lot::Mutex::new(0.0));
    let e = Arc::clone(&emulated);
    conf1.run(move |ctx| {
        *e.lock() = chase(ctx, NodeId(0), 50_000);
    });

    let remote = *remote.lock();
    let emulated = *emulated.lock();
    let err = (emulated - remote).abs() / remote;
    assert!(
        err < 0.03,
        "emulation error {:.2}% (emulated {emulated} vs remote {remote})",
        err * 100.0
    );
}

#[test]
fn emulated_latency_tracks_target() {
    // Fig. 12 in miniature: measured latency under emulation ≈ target.
    let arch = Architecture::IvyBridge;
    for target_ns in [200.0, 500.0, 1000.0] {
        let mem = machine(arch, true);
        let engine = Engine::new(Arc::clone(&mem));
        let quartz = Quartz::new(
            QuartzConfig::new(NvmTarget::new(target_ns)).with_max_epoch(Duration::from_us(100)),
            mem,
        )
        .unwrap();
        quartz.attach(&engine).unwrap();
        let out = Arc::new(parking_lot::Mutex::new(0.0));
        let o = Arc::clone(&out);
        engine.run(move |ctx| {
            let accesses = 50_000;
            *o.lock() = chase(ctx, NodeId(0), accesses) / accesses as f64;
        });
        let measured = *out.lock();
        let err = (measured - target_ns).abs() / target_ns;
        assert!(
            err < 0.05,
            "target {target_ns} ns, measured {measured:.1} ns, err {:.2}%",
            err * 100.0
        );
    }
}

#[test]
fn switched_off_injection_has_low_overhead() {
    // §3.2: emulation with injection off ≈ no emulation at all.
    let arch = Architecture::Haswell;
    let base = {
        let engine = Engine::new(machine(arch, true));
        let out = Arc::new(parking_lot::Mutex::new(0.0));
        let o = Arc::clone(&out);
        engine.run(move |ctx| {
            *o.lock() = chase(ctx, NodeId(0), 20_000);
        });
        let v = *out.lock();
        v
    };
    let off = {
        let mem = machine(arch, true);
        let engine = Engine::new(Arc::clone(&mem));
        let quartz = Quartz::new(
            QuartzConfig::new(NvmTarget::new(500.0)).without_delay_injection(),
            mem,
        )
        .unwrap();
        quartz.attach(&engine).unwrap();
        let out = Arc::new(parking_lot::Mutex::new(0.0));
        let o = Arc::clone(&out);
        engine.run(move |ctx| {
            *o.lock() = chase(ctx, NodeId(0), 20_000);
        });
        let v = *out.lock();
        v
    };
    let overhead = (off - base) / base;
    assert!(
        overhead < 0.04,
        "switched-off emulation overhead {:.2}% exceeds the paper's 4%",
        overhead * 100.0
    );
}

#[test]
fn simple_model_overinjects_under_mlp() {
    // Fig. 2 / ablation: with 8 parallel chains, Eq. 1 injects ~8x too
    // much; Eq. 2 stays accurate.
    let arch = Architecture::IvyBridge;
    let run = |model: LatencyModelKind| -> f64 {
        let mem = machine(arch, true);
        let engine = Engine::new(Arc::clone(&mem));
        let quartz = Quartz::new(
            QuartzConfig::new(NvmTarget::new(400.0))
                .with_model(model)
                .with_max_epoch(Duration::from_us(100)),
            mem,
        )
        .unwrap();
        quartz.attach(&engine).unwrap();
        let out = Arc::new(parking_lot::Mutex::new(0.0));
        let o = Arc::clone(&out);
        engine.run(move |ctx| {
            // 8 independent chains accessed as batches (MLP = 8).
            let l3 = ctx.mem().config().l3.size_bytes;
            let lines = 8 * l3 / 64;
            let buf = ctx.alloc_on(NodeId(0), lines * 64);
            let mut idxs = [0u64; 8];
            for (k, v) in idxs.iter_mut().enumerate() {
                *v = 1 + k as u64 * 7919;
            }
            let t0 = ctx.now();
            let mut batch = [quartz_memsim::Addr(0); 8];
            for _ in 0..20_000 {
                for (k, v) in idxs.iter_mut().enumerate() {
                    *v = (v
                        .wrapping_mul(6_364_136_223_846_793_005)
                        .wrapping_add(1 + k as u64))
                        % lines;
                    batch[k] = buf.offset_by(*v * 64);
                }
                ctx.load_batch(&batch);
            }
            *o.lock() = ctx.now().saturating_duration_since(t0).as_ns_f64();
        });
        let v = *out.lock();
        v
    };
    let stall = run(LatencyModelKind::StallBased);
    let simple = run(LatencyModelKind::Simple);
    assert!(
        simple > 2.0 * stall,
        "simple model should grossly over-inject under MLP: simple {simple}, stall {stall}"
    );
}

#[test]
fn two_memory_mode_rejects_sandy_bridge() {
    let mem = machine(Architecture::SandyBridge, true);
    let err = Quartz::new(
        QuartzConfig::new(NvmTarget::new(300.0)).with_two_memory_mode(),
        mem,
    )
    .unwrap_err();
    assert!(matches!(err, QuartzError::TwoMemoryUnsupported { .. }));
}

#[test]
fn target_below_substrate_rejected() {
    let mem = machine(Architecture::Haswell, true);
    let err = Quartz::new(QuartzConfig::new(NvmTarget::new(50.0)), mem).unwrap_err();
    assert!(matches!(err, QuartzError::TargetFasterThanSubstrate { .. }));
}

#[test]
fn two_memory_leaves_dram_untouched_and_slows_nvm() {
    let arch = Architecture::Haswell;
    let params = arch.params();
    let mem = machine(arch, true);
    let engine = Engine::new(Arc::clone(&mem));
    let quartz = Quartz::new(
        QuartzConfig::new(NvmTarget::new(600.0))
            .with_two_memory_mode()
            .with_max_epoch(Duration::from_us(100)),
        Arc::clone(&mem),
    )
    .unwrap();
    assert_eq!(quartz.nvm_node(), NodeId(1));
    quartz.attach(&engine).unwrap();
    let out = Arc::new(parking_lot::Mutex::new((0.0, 0.0)));
    let o = Arc::clone(&out);
    let q = Arc::clone(&quartz);
    engine.run(move |ctx| {
        // Phase 1: DRAM-only chase.
        let n = 50_000u64;
        let dram_ns = chase(ctx, NodeId(0), n) / n as f64;
        // Phase 2: NVM-only chase (pmalloc side).
        let _ = &q;
        let nvm_ns = chase(ctx, NodeId(1), n) / n as f64;
        *o.lock() = (dram_ns, nvm_ns);
    });
    let (dram_ns, nvm_ns) = *out.lock();
    // Local accesses keep (roughly) local latency. The epoch model may
    // smear a small share of NVM delay over the boundary epochs.
    assert!(
        (dram_ns - params.local_dram_ns.avg_ns as f64).abs() < 25.0,
        "local DRAM latency ~unchanged: {dram_ns}"
    );
    let err = (nvm_ns - 600.0).abs() / 600.0;
    assert!(err < 0.08, "virtual NVM at ~600 ns: {nvm_ns} (err {err})");
}

#[test]
fn bandwidth_target_programs_registers() {
    let mem = machine(Architecture::SandyBridge, true);
    let engine = Engine::new(Arc::clone(&mem));
    let quartz = Quartz::new(
        QuartzConfig::new(NvmTarget::new(200.0).with_bandwidth_gbps(9.6)),
        Arc::clone(&mem),
    )
    .unwrap();
    quartz.attach(&engine).unwrap();
    let thermal = mem.platform().thermal_view();
    let frac = thermal.throttle_fraction(quartz_platform::SocketId(0), 0);
    let peak = mem.config().node_peak_bw_gbps();
    assert!(((frac * peak) - 9.6).abs() < 0.1, "throttled to ~9.6 GB/s");
    engine.run(|_| {});
}

#[test]
fn pflush_injects_write_delay() {
    let mem = machine(Architecture::IvyBridge, true);
    let engine = Engine::new(Arc::clone(&mem));
    let quartz = Quartz::new(
        QuartzConfig::new(NvmTarget::new(300.0).with_write_delay_ns(450.0)),
        mem,
    )
    .unwrap();
    quartz.attach(&engine).unwrap();
    let q = Arc::clone(&quartz);
    let out = Arc::new(parking_lot::Mutex::new(0.0));
    let o = Arc::clone(&out);
    engine.run(move |ctx| {
        let buf = q.pmalloc(ctx, 1 << 16).unwrap();
        let t0 = ctx.now();
        for i in 0..100u64 {
            ctx.store(buf.offset_by(i * 64));
            q.pflush(ctx, buf.offset_by(i * 64));
        }
        *o.lock() = ctx.now().saturating_duration_since(t0).as_ns_f64();
    });
    let elapsed = *out.lock();
    // 100 serialized flushes at >= 450 ns each.
    assert!(elapsed >= 100.0 * 450.0, "pflush serialized: {elapsed}");
    let stats = quartz.stats();
    assert_eq!(stats.totals.pflushes, 100);
    assert!(stats.totals.pflush_delay >= Duration::from_ns(45_000));
}

#[test]
fn sim_failure_reaps_slots_and_runtime_survives_for_next_run() {
    use quartz_threadsim::SimFailure;

    let mem = machine(Architecture::IvyBridge, true);
    let quartz = Quartz::new(
        QuartzConfig::new(NvmTarget::new(300.0).with_write_delay_ns(450.0))
            .with_max_epoch(Duration::from_us(50)),
        Arc::clone(&mem),
    )
    .unwrap();

    // Run 1: a deadlocking workload with undrained pending flushes.
    let engine = Engine::new(Arc::clone(&mem));
    quartz.attach(&engine).unwrap();
    let q = Arc::clone(&quartz);
    let failure = engine
        .try_run(move |ctx| {
            let buf = q.pmalloc(ctx, 4096).unwrap();
            ctx.store(buf);
            q.pflush_opt(ctx, buf); // left pending: never pcommit'ed
            let a = ctx.mutex_new();
            let b = ctx.mutex_new();
            let k1 = ctx.spawn(move |c| {
                c.mutex_lock(a);
                c.compute_ns(5_000.0);
                c.mutex_lock(b);
            });
            let k2 = ctx.spawn(move |c| {
                c.mutex_lock(b);
                c.compute_ns(5_000.0);
                c.mutex_lock(a);
            });
            ctx.join(k1);
            ctx.join(k2);
        })
        .unwrap_err();
    assert!(matches!(failure, SimFailure::Deadlock(_)), "{failure}");

    // The reaper drained every slot and flagged the undrained flush.
    let stats = quartz.stats();
    assert_eq!(
        stats.degradation.orphan_slots_reaped, 3,
        "root + two children reaped: {stats}"
    );
    assert!(
        stats.degradation.epoch_state_anomalies >= 1,
        "undrained pending flush flagged: {stats}"
    );
    // Totals no longer include the failed run's per-thread state.
    assert_eq!(stats.totals.pflushes, 0);

    // Run 2: the same Quartz on a fresh engine works, and its stats are
    // not contaminated by the failed run.
    let engine2 = Engine::new(Arc::clone(&mem));
    quartz.attach(&engine2).unwrap();
    let q = Arc::clone(&quartz);
    engine2.run(move |ctx| {
        let buf = q.pmalloc(ctx, 4096).unwrap();
        for i in 0..10u64 {
            ctx.store(buf.offset_by(i * 64));
            q.pflush(ctx, buf.offset_by(i * 64));
        }
    });
    let stats2 = quartz.stats();
    assert_eq!(stats2.totals.pflushes, 10, "only the healthy run counted");
    assert!(stats2.totals.epochs() >= 1, "epochs close normally again");
}

#[test]
fn pcommit_overlaps_independent_writes() {
    let mem = machine(Architecture::IvyBridge, true);
    let engine = Engine::new(Arc::clone(&mem));
    let quartz = Quartz::new(
        QuartzConfig::new(NvmTarget::new(300.0).with_write_delay_ns(450.0)),
        mem,
    )
    .unwrap();
    quartz.attach(&engine).unwrap();
    let q = Arc::clone(&quartz);
    let out = Arc::new(parking_lot::Mutex::new(0.0));
    let o = Arc::clone(&out);
    engine.run(move |ctx| {
        let buf = q.pmalloc(ctx, 1 << 16).unwrap();
        let t0 = ctx.now();
        for batch in 0..10u64 {
            for i in 0..10u64 {
                let a = buf.offset_by((batch * 10 + i) * 64);
                ctx.store(a);
                q.pflush_opt(ctx, a);
            }
            assert_eq!(q.pending_flushes(ctx), 10);
            q.pcommit(ctx);
            assert_eq!(q.pending_flushes(ctx), 0);
        }
        *o.lock() = ctx.now().saturating_duration_since(t0).as_ns_f64();
    });
    let elapsed = *out.lock();
    // 100 writes, but only 10 barriers are serialized: way below the
    // 100 * 450 ns of the pessimistic pflush path.
    assert!(
        elapsed < 100.0 * 450.0 * 0.5,
        "pcommit batches overlap independent writes: {elapsed}"
    );
    assert!(
        elapsed >= 10.0 * 450.0,
        "each barrier still waits: {elapsed}"
    );
}

#[test]
fn repeated_pflush_opt_of_one_line_does_not_grow_pending_set() {
    let mem = machine(Architecture::IvyBridge, true);
    let engine = Engine::new(Arc::clone(&mem));
    let quartz = Quartz::new(
        QuartzConfig::new(NvmTarget::new(300.0).with_write_delay_ns(450.0)),
        mem,
    )
    .unwrap();
    quartz.attach(&engine).unwrap();
    let q = Arc::clone(&quartz);
    engine.run(move |ctx| {
        let buf = q.pmalloc(ctx, 4096).unwrap();
        // Hammer the same line: the pending set must stay at one entry
        // (the seed grew it by one per call within a commit window).
        for _ in 0..1_000 {
            ctx.store(buf);
            q.pflush_opt(ctx, buf);
        }
        assert_eq!(q.pending_flushes(ctx), 1, "per-line dedupe");
        // A second line makes two.
        ctx.store(buf.offset_by(64));
        q.pflush_opt(ctx, buf.offset_by(64));
        assert_eq!(q.pending_flushes(ctx), 2);
        let before = ctx.now();
        q.pcommit(ctx);
        // Max-completion semantics survive: the barrier still waits for
        // the most recent flush's NVM completion.
        assert!(
            ctx.now().saturating_duration_since(before) >= Duration::from_ns(400),
            "pcommit still waits for the latest completion"
        );
        assert_eq!(q.pending_flushes(ctx), 0);
    });
}

#[test]
fn stats_report_amortization() {
    let mem = machine(Architecture::IvyBridge, true);
    let engine = Engine::new(Arc::clone(&mem));
    let quartz = Quartz::new(
        QuartzConfig::new(NvmTarget::new(400.0)).with_max_epoch(Duration::from_us(200)),
        mem,
    )
    .unwrap();
    quartz.attach(&engine).unwrap();
    engine.run(move |ctx| {
        chase(ctx, NodeId(0), 50_000);
    });
    let stats = quartz.stats();
    assert!(stats.threads >= 1);
    assert!(
        stats.totals.epochs() > 5,
        "epochs closed: {}",
        stats.totals.epochs()
    );
    assert!(stats.totals.injected > Duration::ZERO);
    assert!(
        stats.overhead_fully_amortized(),
        "memory-bound run amortizes overhead: {stats}"
    );
    assert!(stats.init_time > Duration::ZERO);
}

#[test]
fn counter_fidelity_produces_family_error_ordering() {
    // With real (skewed) counters, Sandy Bridge errors exceed Ivy Bridge
    // errors — the paper's Fig. 12 family ordering.
    let measure = |arch: Architecture| -> f64 {
        let mut worst: f64 = 0.0;
        for seed in 0..3u64 {
            let platform = Platform::new(PlatformConfig::new(arch).with_fidelity_seed(seed));
            let mem = Arc::new(MemorySystem::new(
                platform,
                MemSimConfig::default().without_jitter(),
            ));
            let engine = Engine::new(Arc::clone(&mem));
            let target = 1000.0;
            let quartz = Quartz::new(
                QuartzConfig::new(NvmTarget::new(target)).with_max_epoch(Duration::from_us(20)),
                mem,
            )
            .unwrap();
            quartz.attach(&engine).unwrap();
            let out = Arc::new(parking_lot::Mutex::new(0.0));
            let o = Arc::clone(&out);
            engine.run(move |ctx| {
                let n = 30_000u64;
                *o.lock() = chase(ctx, NodeId(0), n) / n as f64;
            });
            let measured = *out.lock();
            worst = worst.max((measured - target).abs() / target);
        }
        worst
    };
    let snb = measure(Architecture::SandyBridge);
    let ivb = measure(Architecture::IvyBridge);
    assert!(snb > ivb, "SNB worst error {snb} should exceed IVB {ivb}");
    assert!(snb < 0.10, "SNB error stays in the paper's band: {snb}");
    assert!(ivb < 0.025, "IVB error stays in the paper's band: {ivb}");
}

#[test]
fn delay_propagates_through_locks() {
    // Fig. 4/13 in miniature: two threads, critical sections only. With
    // proper propagation the emulated completion time matches running on
    // remote memory.
    let arch = Architecture::IvyBridge;
    let params = arch.params();
    let cs_work = |ctx: &mut ThreadCtx, buf: quartz_memsim::Addr, idx: &mut u64, lines: u64| {
        for _ in 0..50 {
            *idx = (idx.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1)) % lines;
            ctx.load(buf.offset_by(*idx * 64));
        }
    };
    let run = |emulate: bool| -> f64 {
        let mem = machine(arch, true);
        let engine = Engine::new(Arc::clone(&mem));
        let node = if emulate { NodeId(0) } else { NodeId(1) };
        if emulate {
            let quartz = Quartz::new(
                QuartzConfig::new(NvmTarget::new(params.remote_dram_ns.avg_ns as f64))
                    .with_max_epoch(Duration::from_ms(10))
                    .with_min_epoch(Duration::from_us(10)),
                Arc::clone(&mem),
            )
            .unwrap();
            quartz.attach(&engine).unwrap();
        }
        let report = engine.run(move |ctx| {
            let m = ctx.mutex_new();
            let lines = 8 * ctx.mem().config().l3.size_bytes / 64;
            let mut kids = Vec::new();
            for k in 0..2u64 {
                kids.push(ctx.spawn(move |c| {
                    let buf = c.alloc_on(node, lines * 64);
                    let mut idx = k * 13 + 1;
                    for _ in 0..200 {
                        c.mutex_lock(m);
                        cs_work(c, buf, &mut idx, lines);
                        c.mutex_unlock(m);
                    }
                }));
            }
            for k in kids {
                ctx.join(k);
            }
        });
        report.end_time.as_ns_f64()
    };
    let actual = run(false);
    let emulated = run(true);
    let err = (emulated - actual).abs() / actual;
    assert!(
        err < 0.05,
        "multithreaded emulation error {:.2}% (emulated {emulated} vs actual {actual})",
        err * 100.0
    );
}

#[test]
fn contended_atomics_charge_visibility_stalls() {
    // Two threads hammering one cell overlap in virtual time, so the
    // thread running behind observes the other's publication and is
    // floored past it — the engine charges a hand-off wait, and the
    // emulator accounts it as a visibility stall on the CAS path.
    let mem = machine(Architecture::IvyBridge, true);
    let engine = Engine::new(Arc::clone(&mem));
    let quartz = Quartz::new(QuartzConfig::new(NvmTarget::new(300.0)), mem).unwrap();
    quartz.attach(&engine).unwrap();
    let a = engine.atomic_u64(0);
    engine.run(move |ctx| {
        let kids: Vec<_> = (0..2)
            .map(|_| {
                ctx.spawn(move |c| {
                    for _ in 0..1000 {
                        a.fetch_add(c, 1);
                    }
                })
            })
            .collect();
        for k in kids {
            ctx.join(k);
        }
    });
    let stats = quartz.stats();
    assert_eq!(stats.totals.atomic_ops, 2000);
    assert!(
        !stats.totals.cas_handoff_wait.is_zero(),
        "visibility stalls charged under contention"
    );
}

#[test]
fn delay_propagates_through_cas_handoffs() {
    // The §6 gap, closed: the same serialized workload as
    // `delay_propagates_through_locks` but synchronized by a CAS
    // spinlock instead of a mutex. With atomic interposition the epoch
    // settles before each publishing CAS/store, so NVM delay lands
    // before the release becomes visible and the emulated completion
    // time matches physically remote memory. With the naive-host-atomics
    // baseline (`without_atomic_interposition`) delays are only injected
    // at thread exit, overlap instead of serializing, and the emulation
    // underestimates.
    let arch = Architecture::IvyBridge;
    let params = arch.params();
    let cs_work = |ctx: &mut ThreadCtx, buf: quartz_memsim::Addr, idx: &mut u64, lines: u64| {
        for _ in 0..150 {
            *idx = (idx.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1)) % lines;
            ctx.load(buf.offset_by(*idx * 64));
        }
    };
    // emulate: None = run on physically remote DRAM without the
    // emulator; Some(seams) = emulate NVM on local DRAM, with or
    // without the atomics interposition seams.
    let run = |emulate: Option<bool>| -> (f64, Option<crate::stats::QuartzStats>) {
        let mem = machine(arch, true);
        let engine = Engine::new(Arc::clone(&mem));
        let node = if emulate.is_some() {
            NodeId(0)
        } else {
            NodeId(1)
        };
        let quartz = emulate.map(|seams| {
            let mut config = QuartzConfig::new(NvmTarget::new(params.remote_dram_ns.avg_ns as f64))
                .with_max_epoch(Duration::from_ms(10))
                .with_min_epoch(Duration::from_us(10));
            if !seams {
                config = config.without_atomic_interposition();
            }
            let quartz = Quartz::new(config, Arc::clone(&mem)).unwrap();
            quartz.attach(&engine).unwrap();
            quartz
        });
        let lock = engine.atomic_u64(0);
        let report = engine.run(move |ctx| {
            let lines = 8 * ctx.mem().config().l3.size_bytes / 64;
            let mut kids = Vec::new();
            for k in 0..2u64 {
                kids.push(ctx.spawn(move |c| {
                    let buf = c.alloc_on(node, lines * 64);
                    let mut idx = k * 13 + 1;
                    for _ in 0..100 {
                        while lock.compare_exchange(c, 0, 1).is_err() {
                            c.compute_ns(30.0);
                        }
                        cs_work(c, buf, &mut idx, lines);
                        lock.store(c, 0);
                    }
                }));
            }
            for k in kids {
                ctx.join(k);
            }
        });
        (report.end_time.as_ns_f64(), quartz.map(|q| q.stats()))
    };
    let (actual, _) = run(None);
    let (emulated, stats) = run(Some(true));
    let (naive, naive_stats) = run(Some(false));
    // The spin-wait epochs carry unamortizable close overhead (the
    // waiter's wait is hidden time in the physical run), so the CAS path
    // is held to a looser bound than the mutex path above — the point is
    // the gap to the naive baseline, asserted next.
    let err = (emulated - actual).abs() / actual;
    assert!(
        err < 0.10,
        "CAS-synchronized emulation error {:.2}% (emulated {emulated} vs actual {actual})",
        err * 100.0
    );
    // The baseline reproduces the paper's limitation: measurably under,
    // and worse than the interposed emulation.
    assert!(
        naive < emulated,
        "naive host atomics should underestimate (naive {naive} vs seams {emulated})"
    );
    let naive_err = (actual - naive) / actual;
    assert!(
        naive_err > err + 0.02,
        "naive baseline should be measurably worse: naive err {:.2}% vs seams err {:.2}%",
        naive_err * 100.0,
        err * 100.0
    );
    // Stall attribution lands on the CAS path.
    let stats = stats.unwrap();
    assert!(stats.totals.epochs_atomic > 0, "epochs closed at CAS seams");
    assert!(stats.totals.atomic_ops > 0);
    assert!(stats.totals.cas_handoffs > 0, "release→acquire edges seen");
    // The gate really is a no-op: no atomics accounting at all.
    let naive_stats = naive_stats.unwrap();
    assert_eq!(naive_stats.totals.epochs_atomic, 0);
    assert_eq!(naive_stats.totals.atomic_ops, 0);
    assert_eq!(naive_stats.totals.cas_handoffs, 0);
}

#[test]
fn epoch_trace_records_each_epoch() {
    let mem = machine(Architecture::IvyBridge, true);
    let engine = Engine::new(Arc::clone(&mem));
    let quartz = Quartz::new(
        QuartzConfig::new(NvmTarget::new(400.0)).with_max_epoch(Duration::from_us(50)),
        mem,
    )
    .unwrap();
    quartz.attach(&engine).unwrap();
    quartz.set_epoch_trace(true);
    engine.run(move |ctx| {
        chase(ctx, NodeId(0), 10_000);
    });
    let trace = quartz.epoch_trace();
    let stats = quartz.stats();
    assert_eq!(
        trace.len() as u64,
        stats.totals.epochs(),
        "one record per epoch"
    );
    assert!(trace.len() > 5);
    // Records are causally ordered per thread and consistent with totals.
    let injected: Duration = trace.iter().map(|r| r.injected).sum();
    assert_eq!(injected, stats.totals.injected);
    for w in trace.windows(2) {
        if w[0].thread == w[1].thread {
            assert!(w[0].closed_at <= w[1].closed_at);
        }
    }
    assert!(trace.iter().all(|r| r.computed_delay >= r.injected));
    assert!(trace.iter().any(|r| r.misses > 0));
    // Disabling clears.
    quartz.set_epoch_trace(false);
    assert!(quartz.epoch_trace().is_empty());
}

/// Regression test for the seed's epoch-close race.
///
/// The seed's `end_epoch` was check-then-act across two lock
/// acquisitions: it read the counters and computed the delta under one
/// acquisition, dropped the state lock, then re-acquired it to overwrite
/// `snap` and charge the stats. A monitor-signalled close slipping into
/// that window would compute its delta against the *same* stale `snap`
/// and charge the epoch's counters twice. The rewritten
/// `end_epoch_on` holds the slot's owner lock across the whole
/// read-compute-update sequence, and its `midpoint` probe runs exactly
/// where the seed dropped the lock — so this test fails on the old
/// double-acquisition logic (the probe could lock) and passes on the new.
#[test]
fn end_epoch_holds_slot_lock_across_read_and_update() {
    use std::sync::atomic::{AtomicU32, Ordering};

    use crate::stats::EpochReason;

    let mem = machine(Architecture::IvyBridge, true);
    let engine = Engine::new(Arc::clone(&mem));
    let quartz = Quartz::new(
        QuartzConfig::new(NvmTarget::new(400.0)).with_max_epoch(Duration::from_us(100)),
        mem,
    )
    .unwrap();
    quartz.attach(&engine).unwrap();
    let q = Arc::clone(&quartz);
    let probes = Arc::new(AtomicU32::new(0));
    let p = Arc::clone(&probes);
    engine.run(move |ctx| {
        chase(ctx, NodeId(0), 2_000);
        let slot = q.slot_of(ctx).expect("thread registered at start");
        for _ in 0..3 {
            chase(ctx, NodeId(0), 500);
            q.end_epoch_on(&slot, ctx, EpochReason::MutexUnlock, |s| {
                // A concurrent close (the seed's race partner) would have
                // to acquire the owner lock right here — it must fail.
                assert!(
                    s.try_lock_owner().is_none(),
                    "owner lock must be held across the counter-read/state-update window"
                );
                p.fetch_add(1, Ordering::SeqCst);
            });
        }
    });
    assert_eq!(
        probes.load(Ordering::SeqCst),
        3,
        "probe ran inside each close"
    );
}

/// Under a synchronization storm with monitor pressure, every epoch is
/// charged exactly once: the per-thread stats tile the aggregate totals
/// and the trace tiles the injected-delay accounting.
#[test]
fn storm_accounting_has_no_double_charges() {
    let mem = machine(Architecture::IvyBridge, true);
    let engine = Engine::new(Arc::clone(&mem));
    let quartz = Quartz::new(
        QuartzConfig::new(NvmTarget::new(500.0))
            .with_max_epoch(Duration::from_us(20)) // heavy monitor pressure
            .with_min_epoch(Duration::from_us(2)),
        mem,
    )
    .unwrap();
    quartz.attach(&engine).unwrap();
    quartz.set_epoch_trace(true);
    engine.run(move |ctx| {
        let m = ctx.mutex_new();
        let lines = 8 * ctx.mem().config().l3.size_bytes / 64;
        let mut kids = Vec::new();
        for k in 0..4u64 {
            kids.push(ctx.spawn(move |c| {
                let buf = c.alloc_on(NodeId(0), lines * 64);
                let mut idx = k * 31 + 1;
                for _ in 0..100 {
                    c.mutex_lock(m);
                    for _ in 0..20 {
                        idx = (idx.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1)) % lines;
                        c.load(buf.offset_by(idx * 64));
                    }
                    c.mutex_unlock(m);
                }
            }));
        }
        for kid in kids {
            ctx.join(kid);
        }
    });
    let stats = quartz.stats();
    let per = quartz.per_thread_stats();
    let trace = quartz.epoch_trace();

    // 1 main + 4 workers registered; one stats entry each.
    assert_eq!(stats.threads, 5);
    assert_eq!(per.len(), 5);
    // Per-thread stats sum exactly to the aggregate: an epoch charged
    // twice (the seed's race) would break this tiling.
    let injected: Duration = per.iter().map(|t| t.injected).sum();
    assert_eq!(injected, stats.totals.injected);
    let epochs: u64 = per.iter().map(|t| t.epochs()).sum();
    assert_eq!(epochs, stats.totals.epochs());
    let skipped: u64 = per.iter().map(|t| t.skipped_min_epoch).sum();
    assert_eq!(skipped, stats.totals.skipped_min_epoch);
    // The trace is one record per close, and its injected sum matches.
    assert_eq!(trace.len() as u64, stats.totals.epochs());
    let traced: Duration = trace.iter().map(|r| r.injected).sum();
    assert_eq!(traced, stats.totals.injected);
    // The storm did exercise both monitor and unlock closes.
    assert!(stats.totals.epochs_unlock > 0, "{stats}");
    assert!(stats.totals.epochs_monitor > 0, "{stats}");
    // Host-side slot-lock telemetry: one acquisition per charged event,
    // never zero once epochs closed.
    assert!(stats.totals.lock_acquisitions >= stats.totals.epochs());
    assert!(per.iter().all(|t| t.lock_acquisitions > 0));
}

/// Streams regular (RFO-path) stores over a buffer far larger than L3,
/// touching one line per page stride so the store buffer backs up;
/// returns elapsed virtual ns.
fn store_burst(ctx: &mut ThreadCtx, node: NodeId, stores: u64) -> f64 {
    let buf = ctx.alloc_on(node, 1 << 24);
    let t0 = ctx.now();
    for i in 0..stores {
        ctx.store(buf.offset_by((i * 4096 + (i % 7) * 64) % ((1 << 24) - 64)));
    }
    ctx.now().saturating_duration_since(t0).as_ns_f64()
}

#[test]
fn asymmetric_model_charges_write_heavy_runs() {
    // The tentpole's point: a write-heavy run under the symmetric model
    // pays almost nothing (posted stores are invisible to the load-side
    // counters), while the asymmetric model prices the store-buffer
    // back-pressure at the NVM write latency.
    let arch = Architecture::IvyBridge;
    let run = |target: NvmTarget| {
        let mem = machine(arch, true);
        let engine = Engine::new(Arc::clone(&mem));
        let quartz = Quartz::new(
            QuartzConfig::new(target).with_max_epoch(Duration::from_us(100)),
            mem,
        )
        .unwrap();
        quartz.attach(&engine).unwrap();
        let out = Arc::new(parking_lot::Mutex::new(0.0));
        let o = Arc::clone(&out);
        engine.run(move |ctx| {
            *o.lock() = store_burst(ctx, NodeId(0), 30_000);
        });
        let v = *out.lock();
        (v, quartz.stats())
    };
    let sym = NvmTarget::new(300.0);
    let asym = NvmTarget::new(300.0).with_write_latency_ns(900.0);
    let (t_sym, s_sym) = run(sym);
    let (t_asym, s_asym) = run(asym);
    assert!(s_sym.totals.write_term.is_zero());
    assert!(!s_asym.totals.write_term.is_zero());
    assert!(
        t_asym > 1.1 * t_sym,
        "asymmetric run must be visibly slower on write-heavy code: {t_asym} vs {t_sym}"
    );
    // Schema: the write term surfaces in JSON only for the asymmetric run.
    assert!(!s_sym.to_json().contains("write_term_ps"));
    assert!(s_asym.to_json().contains("write_term_ps"));
}

#[test]
fn asymmetric_model_leaves_read_heavy_runs_alone() {
    // Control cell: a pointer chase has no store traffic, so turning the
    // asymmetric model on must not change the injected read-side delay
    // beyond the (amortized) extra counter-read overhead.
    let arch = Architecture::Haswell;
    let run = |target: NvmTarget| {
        let mem = machine(arch, true);
        let engine = Engine::new(Arc::clone(&mem));
        let quartz = Quartz::new(
            QuartzConfig::new(target).with_max_epoch(Duration::from_us(100)),
            mem,
        )
        .unwrap();
        quartz.attach(&engine).unwrap();
        let out = Arc::new(parking_lot::Mutex::new(0.0));
        let o = Arc::clone(&out);
        engine.run(move |ctx| {
            *o.lock() = chase(ctx, NodeId(0), 30_000);
        });
        let v = *out.lock();
        (v, quartz.stats())
    };
    let (t_sym, _) = run(NvmTarget::new(500.0));
    let (t_asym, s_asym) = run(NvmTarget::new(500.0).with_write_latency_ns(900.0));
    // No stores -> no SB stalls -> zero write term, even with the model on.
    assert!(s_asym.totals.write_term.is_zero(), "{s_asym}");
    let drift = (t_asym - t_sym).abs() / t_sym;
    assert!(drift < 0.02, "read-heavy drift {:.3}%", drift * 100.0);
}

#[test]
fn pflush_does_not_double_charge_stores_under_asymmetric_model() {
    // Satellite check for the two write knobs: a store that is promptly
    // pflushed is charged once by pflush (write_delay_ns); the asymmetric
    // term must not price the flush writeback again. With flushes keeping
    // the store buffer drained there is no RFO back-pressure, so the
    // write term stays zero and total write charging is exactly
    // pflushes x write_delay.
    let mem = machine(Architecture::IvyBridge, true);
    let engine = Engine::new(Arc::clone(&mem));
    let target = NvmTarget::new(300.0)
        .with_write_delay_ns(450.0)
        .with_write_latency_ns(900.0);
    let quartz = Quartz::new(QuartzConfig::new(target), mem).unwrap();
    quartz.attach(&engine).unwrap();
    let q = Arc::clone(&quartz);
    engine.run(move |ctx| {
        let buf = q.pmalloc(ctx, 1 << 16).unwrap();
        for i in 0..200u64 {
            ctx.store(buf.offset_by((i % 1024) * 64));
            q.pflush(ctx, buf.offset_by((i % 1024) * 64));
        }
    });
    let stats = quartz.stats();
    assert_eq!(stats.totals.pflushes, 200);
    assert_eq!(stats.totals.pflush_delay, Duration::from_ns(200 * 450));
    // Each flush spins 450 ns, so the at-most-one in-flight RFO always
    // completes before the next store: zero SB stalls, zero write term.
    assert!(
        stats.totals.write_term.is_zero(),
        "flushed stores double-charged: {stats}"
    );
}

#[test]
fn wpq_pacing_throttles_flush_bursts() {
    // write_bandwidth_gbps paces pflush at the NVM drain rate: 1 GB/s
    // means 64 ns per line, dominating a 1 ns fixed write delay.
    let mem = machine(Architecture::IvyBridge, true);
    let engine = Engine::new(Arc::clone(&mem));
    let target = NvmTarget::new(300.0)
        .with_write_delay_ns(1.0)
        .with_write_bandwidth_gbps(1.0);
    let quartz = Quartz::new(QuartzConfig::new(target), mem).unwrap();
    quartz.attach(&engine).unwrap();
    let q = Arc::clone(&quartz);
    let out = Arc::new(parking_lot::Mutex::new(0.0));
    let o = Arc::clone(&out);
    engine.run(move |ctx| {
        let buf = q.pmalloc(ctx, 1 << 16).unwrap();
        let t0 = ctx.now();
        for i in 0..50u64 {
            ctx.store(buf.offset_by(i * 64));
            q.pflush(ctx, buf.offset_by(i * 64));
        }
        *o.lock() = ctx.now().saturating_duration_since(t0).as_ns_f64();
    });
    // 50 lines at 64 ns/line of drain = 3200 ns minimum.
    assert!(*out.lock() >= 50.0 * 64.0, "WPQ pacing: {}", out.lock());
    let stats = quartz.stats();
    assert!(stats.totals.pflush_delay >= Duration::from_ns(3200));
}

mod snap_properties {
    //! Property tests for the counter-snapshot arithmetic the epoch
    //! accounting is built on.

    use proptest::prelude::*;

    use crate::runtime::Snap;

    /// Builds cumulative (monotone) snapshots from per-interval
    /// increments, in either counter family: `split` architectures
    /// expose local/remote miss counters, the others one `miss_all`.
    fn cumulative(incs: &[(u64, u64, u64, u64)], split: bool) -> Vec<Snap> {
        let mut snaps = vec![Snap::default()];
        let mut acc = Snap::default();
        for &(stalls, hits, m1, m2) in incs {
            acc.stalls += stalls;
            acc.hits += hits;
            if split {
                acc.miss_local += m1;
                acc.miss_remote += m2;
            } else {
                acc.miss_all += m1 + m2;
            }
            snaps.push(acc);
        }
        snaps
    }

    proptest! {
        /// However the closes interleave (any partition of the counter
        /// timeline into epochs), the per-epoch deltas tile the total:
        /// nothing is charged twice, nothing is lost, and `misses()` is
        /// additive in both counter families.
        #[test]
        fn snap_deltas_tile_under_interleaved_closes(
            incs in proptest::collection::vec(
                (0u64..1000, 0u64..1000, 0u64..1000, 0u64..1000),
                1..24,
            ),
            cuts in proptest::collection::vec(proptest::bool::ANY, 0..24),
            split in proptest::bool::ANY,
        ) {
            let snaps = cumulative(&incs, split);
            let total = snaps[snaps.len() - 1].delta(snaps[0]);

            // Walk the timeline, closing an epoch wherever `cuts` says
            // so (and always at the end), exactly as `end_epoch_on`
            // advances `snap = cur` at each close.
            let mut snap = snaps[0];
            let mut charged = Snap::default();
            let mut charged_misses = 0u64;
            for (i, cur) in snaps.iter().enumerate().skip(1) {
                let close_here =
                    i == snaps.len() - 1 || cuts.get(i - 1).copied().unwrap_or(false);
                if close_here {
                    let d = cur.delta(snap);
                    // Monotone counters: deltas never go negative
                    // (saturating_sub must never actually saturate).
                    prop_assert!(cur.stalls >= snap.stalls);
                    prop_assert_eq!(d.stalls, cur.stalls - snap.stalls);
                    charged.stalls += d.stalls;
                    charged.hits += d.hits;
                    charged.miss_local += d.miss_local;
                    charged.miss_remote += d.miss_remote;
                    charged.miss_all += d.miss_all;
                    charged_misses += d.misses();
                    snap = *cur; // epoch boundary: cur becomes the base
                }
            }
            prop_assert_eq!(charged, total, "epoch deltas must tile the counter timeline");
            prop_assert_eq!(charged_misses, total.misses(), "misses() additive per family");
        }

        /// 48-bit wrap regression (the seed's `saturating_sub` delta
        /// silently zeroed the epoch that spanned a wrap): for a counter
        /// parked anywhere, including just below 2^48, the delta across
        /// the wrap recovers the true increment mod 2^48.
        #[test]
        fn snap_delta_survives_48_bit_wrap(
            park_below in 0u64..1_000_000,
            inc in 0u64..10_000_000,
        ) {
            use quartz_platform::pmu::COUNTER_MASK;
            let start = COUNTER_MASK - park_below; // just below 2^48
            let before = Snap { stalls: start, ..Snap::default() };
            let after = Snap {
                stalls: start.wrapping_add(inc) & COUNTER_MASK,
                ..Snap::default()
            };
            let d = after.delta(before);
            prop_assert_eq!(d.stalls, inc, "delta must be the true increment mod 2^48");
            let wraps = after.wraps_since(before);
            prop_assert_eq!(wraps, u64::from(inc > park_below), "wrap detection");
        }

        /// `misses()` prefers the unified counter when the architecture
        /// provides one and falls back to the local/remote split.
        #[test]
        fn misses_prefers_unified_counter(
            all in 1u64..10_000,
            local in 0u64..10_000,
            remote in 0u64..10_000,
        ) {
            let unified = Snap { miss_all: all, miss_local: local, miss_remote: remote, ..Snap::default() };
            prop_assert_eq!(unified.misses(), all);
            let split = Snap { miss_local: local, miss_remote: remote, ..Snap::default() };
            prop_assert_eq!(split.misses(), local + remote);
        }
    }
}
