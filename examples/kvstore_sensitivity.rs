//! Key-value store sensitivity to NVM latency (the paper's Fig. 16 (c)
//! study in example form): run the same put/get workload against a range
//! of emulated NVM read latencies and watch throughput degrade
//! non-linearly.
//!
//! Run with: `cargo run --release --example kvstore_sensitivity`

use std::sync::Arc;

use quartz::{NvmTarget, Quartz, QuartzConfig};
use quartz_memsim::{MemSimConfig, MemorySystem};
use quartz_platform::time::Duration;
use quartz_platform::{Architecture, Platform, PlatformConfig};
use quartz_threadsim::Engine;
use quartz_workloads::kvstore::{preload, run_kv_benchmark, KvBenchConfig, KvConfig, KvStore};

fn throughput_at(nvm_latency_ns: f64) -> f64 {
    let platform = Platform::new(PlatformConfig::new(Architecture::SandyBridge));
    let mem = Arc::new(MemorySystem::new(platform, MemSimConfig::default()));
    let engine = Engine::new(Arc::clone(&mem));
    let quartz = Quartz::new(
        QuartzConfig::new(NvmTarget::new(nvm_latency_ns)).with_max_epoch(Duration::from_us(100)),
        mem,
    )
    .expect("valid target");
    quartz.attach(&engine).expect("attach");

    let out = Arc::new(parking_lot::Mutex::new(0.0));
    let o = Arc::clone(&out);
    let q = Arc::clone(&quartz);
    engine.run(move |ctx| {
        // ~150k keys build a tree several times the LLC, so lookups
        // miss the way MassTree's do on its 140M-key stores.
        let store = Arc::new(KvStore::create(ctx, KvConfig::new(q.nvm_node())));
        preload(ctx, &store, None, 150_000);
        ctx.mem().invalidate_caches();
        let cfg = KvBenchConfig {
            preload_keys: 150_000,
            ops_per_thread: 5_000,
            threads: 4,
            get_fraction: 0.5,
            ..KvBenchConfig::default()
        };
        *o.lock() = run_kv_benchmark(ctx, &store, Some(Arc::clone(&q)), &cfg).ops_per_sec();
    });
    let v = *out.lock();
    v
}

fn main() {
    println!("NVM read latency sweep — 4-thread put/get mix (50/50), zipf 0.9");
    println!(
        "{:>12}  {:>14}  {:>10}",
        "latency(ns)", "throughput", "relative"
    );
    let baseline = throughput_at(100.0);
    for lat in [100.0, 200.0, 300.0, 500.0, 1000.0, 2000.0] {
        let t = throughput_at(lat);
        println!("{:>12}  {:>11.0}/s  {:>9.2}x", lat, t, t / baseline);
    }
    println!();
    println!("Expect the paper's shape: mild drop at 2x DRAM latency, ~5x collapse at 2 us.");
}
