//! Delay propagation across threads (paper §2.3 / Fig. 4 / Fig. 13):
//! runs the Multi-Threaded benchmark with and without the minimum-epoch
//! interposition that injects accumulated delay *before* a lock release.
//!
//! Without propagation (minimum epoch = maximum epoch), each thread
//! injects its delays independently and critical sections of different
//! threads overlap in a way slower NVM would not allow — the paper
//! reports up to 34% error from this. With propagation the emulated time
//! tracks physically-slower memory closely.
//!
//! Run with: `cargo run --release --example multithreaded_emulation`

use std::sync::Arc;

use quartz::{NvmTarget, Quartz, QuartzConfig};
use quartz_memsim::{MemSimConfig, MemorySystem};
use quartz_platform::time::Duration;
use quartz_platform::{Architecture, NodeId, Platform, PlatformConfig};
use quartz_threadsim::Engine;
use quartz_workloads::{run_multithreaded, MultiThreadedConfig};

fn machine() -> Arc<MemorySystem> {
    let platform = Platform::new(PlatformConfig::new(Architecture::IvyBridge));
    Arc::new(MemorySystem::new(platform, MemSimConfig::default()))
}

fn bench(threads: usize, node: NodeId, emulation: Option<Option<Duration>>) -> f64 {
    let mem = machine();
    let engine = Engine::new(Arc::clone(&mem));
    if let Some(min_epoch) = emulation {
        let remote = mem.platform().arch_params().remote_dram_ns.avg_ns as f64;
        let base = QuartzConfig::new(NvmTarget::new(remote)).with_max_epoch(Duration::from_ms(10));
        let config = match min_epoch {
            Some(min) => base.with_min_epoch(min),
            None => base.without_sync_interposition(),
        };
        let quartz = Quartz::new(config, Arc::clone(&mem)).expect("valid config");
        quartz.attach(&engine).expect("attach");
    }
    let out = Arc::new(parking_lot::Mutex::new(0.0));
    let o = Arc::clone(&out);
    engine.run(move |ctx| {
        let cfg = MultiThreadedConfig::cs_only(threads, 500, node);
        *o.lock() = run_multithreaded(ctx, &cfg).elapsed.as_ns_f64() / 1e6;
    });
    let v = *out.lock();
    v
}

fn main() {
    println!("Multi-Threaded benchmark, critical sections only, emulating remote-DRAM");
    println!("latency on local memory vs. actually running on remote memory.");
    println!();
    println!(
        "{:>8}  {:>12}  {:>16}  {:>18}",
        "threads", "actual (ms)", "propagated (ms)", "no propagation"
    );
    for threads in [2usize, 4, 8] {
        // Ground truth: physically remote memory, no emulator.
        let actual = bench(threads, NodeId(1), None);
        // Quartz with delay propagation (small minimum epoch).
        let propagated = bench(threads, NodeId(0), Some(Some(Duration::from_us(100))));
        // Quartz without sync interposition — the paper's light-blue
        // "independent delays" line.
        let independent = bench(threads, NodeId(0), Some(None));
        println!(
            "{:>8}  {:>12.2}  {:>9.2} ({:>4.1}%)  {:>11.2} ({:>5.1}%)",
            threads,
            actual,
            propagated,
            (propagated - actual) / actual * 100.0,
            independent,
            (independent - actual) / actual * 100.0,
        );
    }
    println!();
    println!("Propagated delays stay within a few percent; independent injection");
    println!("underestimates more as thread count grows (paper: up to 34%).");
}
