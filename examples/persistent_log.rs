//! A crash-consistent write-ahead log on emulated persistent memory,
//! comparing the paper's two write-emulation models:
//!
//! * `pflush` (§3.1): every cache-line write stalls for the full NVM
//!   write latency — pessimistically serialized;
//! * `clflushopt` + `pcommit` (§6): flushes accumulate and only the
//!   commit barrier stalls, so the independent lines of one log record
//!   drain in parallel.
//!
//! Run with: `cargo run --release --example persistent_log`

use std::sync::Arc;

use quartz::{NvmTarget, Quartz, QuartzConfig};
use quartz_memsim::{Addr, MemSimConfig, MemorySystem};
use quartz_platform::{Architecture, Platform, PlatformConfig};
use quartz_threadsim::{Engine, ThreadCtx};

/// Bytes per log record (4 cache lines of payload + 1 header line).
const RECORD_LINES: u64 = 5;

/// A minimal write-ahead log: append = write payload lines, persist
/// them, then write + persist the header (commit point) — the standard
/// ordering that makes torn records detectable after a crash.
struct Wal {
    base: Addr,
    next_record: u64,
    capacity: u64,
}

impl Wal {
    fn create(ctx: &mut ThreadCtx, quartz: &Quartz, records: u64) -> Self {
        let base = quartz
            .pmalloc(ctx, records * RECORD_LINES * 64)
            .expect("pmalloc WAL region");
        Wal {
            base,
            next_record: 0,
            capacity: records,
        }
    }

    fn record_addr(&self, i: u64, line: u64) -> Addr {
        self.base.offset_by((i * RECORD_LINES + line) * 64)
    }

    /// Append with serialized `pflush` per line.
    fn append_pflush(&mut self, ctx: &mut ThreadCtx, quartz: &Quartz) {
        let i = self.next_record % self.capacity;
        // Payload lines first...
        for line in 1..RECORD_LINES {
            ctx.store(self.record_addr(i, line));
            quartz.pflush(ctx, self.record_addr(i, line));
        }
        // ...then the commit header.
        ctx.store(self.record_addr(i, 0));
        quartz.pflush(ctx, self.record_addr(i, 0));
        self.next_record += 1;
    }

    /// Append with `clflushopt` + `pcommit`: payload lines drain in
    /// parallel; ordering against the header is kept by a barrier
    /// between payload and header persists.
    fn append_pcommit(&mut self, ctx: &mut ThreadCtx, quartz: &Quartz) {
        let i = self.next_record % self.capacity;
        for line in 1..RECORD_LINES {
            ctx.store(self.record_addr(i, line));
            quartz.pflush_opt(ctx, self.record_addr(i, line));
        }
        quartz.pcommit(ctx); // payload durable before the commit point
        ctx.store(self.record_addr(i, 0));
        quartz.pflush_opt(ctx, self.record_addr(i, 0));
        quartz.pcommit(ctx);
        self.next_record += 1;
    }
}

fn run(appends: u64, use_pcommit: bool) -> f64 {
    let platform = Platform::new(PlatformConfig::new(Architecture::IvyBridge));
    let mem = Arc::new(MemorySystem::new(platform, MemSimConfig::default()));
    let engine = Engine::new(Arc::clone(&mem));
    // A PCM-like NVM: 300 ns reads, 500 ns per-line write tail.
    let target = NvmTarget::new(300.0).with_write_delay_ns(500.0);
    let quartz = Quartz::new(QuartzConfig::new(target), mem).expect("valid target");
    quartz.attach(&engine).expect("attach");

    let q = Arc::clone(&quartz);
    let out = Arc::new(parking_lot::Mutex::new(0.0));
    let o = Arc::clone(&out);
    engine.run(move |ctx| {
        let mut wal = Wal::create(ctx, &q, 4_096);
        let t0 = ctx.now();
        for _ in 0..appends {
            if use_pcommit {
                wal.append_pcommit(ctx, &q);
            } else {
                wal.append_pflush(ctx, &q);
            }
        }
        *o.lock() = ctx.now().saturating_duration_since(t0).as_ns_f64();
    });
    let total_ns = *out.lock();
    total_ns / appends as f64
}

fn main() {
    let appends = 2_000;
    println!("Write-ahead log appends on emulated NVM (500 ns line writes)");
    println!("record = 4 payload lines + 1 header line, header persisted last");
    println!();
    let pflush_ns = run(appends, false);
    let pcommit_ns = run(appends, true);
    println!("  pflush  (serialized writes): {pflush_ns:>8.0} ns/append");
    println!("  pcommit (parallel payload) : {pcommit_ns:>8.0} ns/append");
    println!(
        "  speedup                    : {:>8.2}x",
        pflush_ns / pcommit_ns
    );
    println!();
    println!("The pcommit model keeps the crash-consistency ordering (payload");
    println!("before header) while letting the four payload lines drain in");
    println!("parallel — the §6 'opportunities' design.");
}
