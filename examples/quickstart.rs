//! Quickstart: emulate a 400 ns / 10 GB/s NVM and touch persistent
//! memory from a workload thread.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use quartz::{NvmTarget, Quartz, QuartzConfig};
use quartz_memsim::{MemSimConfig, MemorySystem};
use quartz_platform::{Architecture, Platform, PlatformConfig};
use quartz_threadsim::Engine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the simulated two-socket Ivy Bridge machine.
    let platform = Platform::new(PlatformConfig::new(Architecture::IvyBridge));
    let mem = Arc::new(MemorySystem::new(platform, MemSimConfig::default()));
    let engine = Engine::new(Arc::clone(&mem));

    // 2. Configure Quartz: a PCM-like NVM at 400 ns reads, 10 GB/s.
    let target = NvmTarget::new(400.0).with_bandwidth_gbps(10.0);
    let quartz = Quartz::new(QuartzConfig::new(target), mem)?;
    quartz.attach(&engine)?;

    // 3. Run an application. It allocates persistent memory with
    //    pmalloc, writes records, and persists them with pflush.
    let q = Arc::clone(&quartz);
    let report = engine.run(move |ctx| {
        let records = q.pmalloc(ctx, 64 * 1024).expect("pmalloc");
        // Write and persist 256 64-byte records.
        for i in 0..256u64 {
            ctx.store(records.offset_by(i * 64));
            q.pflush(ctx, records.offset_by(i * 64));
        }
        // Read them back (epoch-based latency emulation applies).
        for i in 0..256u64 {
            ctx.load(records.offset_by(i * 64));
        }
        q.pfree(ctx, records).expect("pfree");
    });

    println!("workload finished at t = {}", report.end_time);
    println!();
    println!("{}", quartz.stats());
    Ok(())
}
