//! Data placement on a DRAM+NVM system (paper §3.3): the same PageRank
//! computation with (a) everything in virtual NVM versus (b) the
//! hot rank vectors placed in fast DRAM via `malloc` while the large
//! graph structure stays in NVM via `pmalloc`.
//!
//! This is the design question the two-memory extension exists to answer:
//! "how shall we design new applications to benefit from this memory
//! arrangement and decide on the efficient data placement?"
//!
//! Run with: `cargo run --release --example two_memory_placement`

use std::sync::Arc;

use quartz::{NvmTarget, Quartz, QuartzConfig};
use quartz_memsim::{MemSimConfig, MemorySystem};
use quartz_platform::time::Duration;
use quartz_platform::{Architecture, NodeId, Platform, PlatformConfig};
use quartz_threadsim::Engine;
use quartz_workloads::graph::Graph;
use quartz_workloads::pagerank::{run_pagerank, PageRankConfig};

fn pagerank_time(nvm_latency_ns: f64, ranks_in_dram: bool) -> f64 {
    let platform = Platform::new(PlatformConfig::new(Architecture::Haswell));
    let mem = Arc::new(MemorySystem::new(platform, MemSimConfig::default()));
    let engine = Engine::new(Arc::clone(&mem));
    let quartz = Quartz::new(
        QuartzConfig::new(NvmTarget::new(nvm_latency_ns))
            .with_two_memory_mode()
            .with_max_epoch(Duration::from_us(100)),
        mem,
    )
    .expect("valid two-memory config");
    quartz.attach(&engine).expect("attach");
    let nvm_node = quartz.nvm_node();

    // Sized so the rank vectors spill out of the caches: placement of
    // the gathered data then actually matters.
    let graph = Graph::random(40_000, 560_000, 42);
    let out = Arc::new(parking_lot::Mutex::new(0.0));
    let o = Arc::clone(&out);
    engine.run(move |ctx| {
        let cfg = PageRankConfig {
            structure_node: nvm_node,
            rank_node: if ranks_in_dram { NodeId(0) } else { nvm_node },
            max_iterations: 4,
            ..PageRankConfig::default()
        };
        *o.lock() = run_pagerank(ctx, &graph, &cfg).elapsed.as_ns_f64() / 1e6;
    });
    let v = *out.lock();
    v
}

fn main() {
    println!("PageRank on a DRAM+NVM machine (4 power iterations, 40k vertices)");
    println!(
        "{:>12}  {:>16}  {:>16}  {:>8}",
        "NVM lat(ns)", "all-in-NVM (ms)", "ranks-in-DRAM", "speedup"
    );
    for lat in [200.0, 400.0, 800.0, 1600.0] {
        let all_nvm = pagerank_time(lat, false);
        let placed = pagerank_time(lat, true);
        println!(
            "{:>12}  {:>16.2}  {:>16.2}  {:>7.2}x",
            lat,
            all_nvm,
            placed,
            all_nvm / placed
        );
    }
    println!();
    println!("Placing the randomly-gathered rank vectors in DRAM recovers most of");
    println!("the performance: the sequential CSR sweeps hide NVM latency behind");
    println!("the prefetcher, while the latency-bound gathers stay on fast memory.");
}
