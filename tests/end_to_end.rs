//! Cross-crate integration tests: the full stack (platform → memsim →
//! threadsim → quartz → workloads) exercised end-to-end through the
//! paper's validation methodology.

use std::sync::Arc;

use quartz::{NvmTarget, QuartzConfig};
use quartz_bench::{error_pct, run_workload, MachineSpec};
use quartz_platform::time::Duration;
use quartz_platform::{Architecture, NodeId};
use quartz_workloads::kvstore::{preload, run_kv_benchmark, KvBenchConfig, KvConfig, KvStore};
use quartz_workloads::{
    run_memlat, run_multilat, run_multithreaded, MemLatConfig, MultiLatConfig, MultiThreadedConfig,
};

fn memlat_cfg(l3_bytes: u64, chains: usize, iterations: u64, node: NodeId) -> MemLatConfig {
    MemLatConfig {
        chains,
        lines_per_chain: (8 * l3_bytes / 64) / chains as u64,
        iterations,
        node,
        seed: 0xE2E,
    }
}

#[test]
fn conf1_memlat_matches_conf2_full_stack() {
    let arch = Architecture::IvyBridge;
    let remote = arch.params().remote_dram_ns.avg_ns as f64;

    let mem = MachineSpec::new(arch).with_seed(1).build();
    let l3 = mem.config().l3.size_bytes;
    let (conf2, _) = run_workload(mem, None, move |ctx, _| {
        run_memlat(ctx, &memlat_cfg(l3, 1, 25_000, NodeId(1))).latency_per_iteration_ns()
    });

    let mem = MachineSpec::new(arch).with_seed(1).build();
    let qc = QuartzConfig::new(NvmTarget::new(remote)).with_max_epoch(Duration::from_us(20));
    let (conf1, quartz) = run_workload(mem, Some(qc), move |ctx, _| {
        run_memlat(ctx, &memlat_cfg(l3, 1, 25_000, NodeId(0))).latency_per_iteration_ns()
    });

    let err = error_pct(conf1, conf2);
    assert!(
        err < 3.0,
        "full-stack memlat error {err:.2}% (conf1 {conf1}, conf2 {conf2})"
    );
    let stats = quartz.expect("attached").stats();
    assert!(
        stats.totals.epochs() > 20,
        "epochs: {}",
        stats.totals.epochs()
    );
}

#[test]
fn multilat_two_memory_end_to_end() {
    let arch = Architecture::Haswell;
    let local = arch.params().local_dram_ns.avg_ns as f64;
    let nvm_target = 500.0;
    let mem = MachineSpec::new(arch).with_seed(2).build();
    let qc = QuartzConfig::new(NvmTarget::new(nvm_target))
        .with_two_memory_mode()
        .with_max_epoch(Duration::from_us(20));
    let (result, _) = run_workload(mem, Some(qc), move |ctx, _| {
        run_multilat(
            ctx,
            &MultiLatConfig {
                dram_elements: 10_000,
                nvm_elements: 5_000,
                dram_burst: 200,
                nvm_burst: 100,
                dram_node: NodeId(0),
                nvm_node: NodeId(1),
                seed: 3,
            },
        )
    });
    let err = result.error_vs_expected(local, nvm_target);
    assert!(err < 0.05, "two-memory multilat error {:.2}%", err * 100.0);
}

#[test]
fn multithreaded_propagation_end_to_end() {
    let arch = Architecture::IvyBridge;
    let remote = arch.params().remote_dram_ns.avg_ns as f64;
    let cfg = MultiThreadedConfig::cs_only(4, 150, NodeId(1));

    let mem = MachineSpec::new(arch).with_seed(3).build();
    let (actual, _) = run_workload(mem, None, move |ctx, _| {
        run_multithreaded(ctx, &cfg).elapsed.as_ns_f64()
    });

    let cfg1 = MultiThreadedConfig {
        node: NodeId(0),
        ..cfg
    };
    let mem = MachineSpec::new(arch).with_seed(3).build();
    let qc = QuartzConfig::new(NvmTarget::new(remote))
        .with_max_epoch(Duration::from_ms(10))
        .with_min_epoch(Duration::from_us(10));
    let (emulated, _) = run_workload(mem, Some(qc), move |ctx, _| {
        run_multithreaded(ctx, &cfg1).elapsed.as_ns_f64()
    });

    let err = error_pct(emulated, actual);
    assert!(
        err < 5.0,
        "propagation error {err:.2}% (emu {emulated}, actual {actual})"
    );
}

#[test]
fn kv_store_persistent_mode_end_to_end() {
    let arch = Architecture::IvyBridge;
    let mem = MachineSpec::new(arch).with_seed(4).build();
    let qc =
        QuartzConfig::new(NvmTarget::new(400.0).with_write_delay_ns(500.0)).with_two_memory_mode();
    let (elapsed_ratio, quartz) = run_workload(mem, Some(qc), move |ctx, q| {
        let q = q.expect("attached");
        // Volatile store in DRAM vs persistent store in NVM with pflush.
        let vol = Arc::new(KvStore::create(ctx, KvConfig::new(NodeId(0))));
        let per = Arc::new(KvStore::create(
            ctx,
            KvConfig::new(q.nvm_node()).with_persistence(),
        ));
        let t0 = ctx.now();
        for k in 0..500u64 {
            vol.put(ctx, None, k, k);
        }
        let t1 = ctx.now();
        for k in 0..500u64 {
            per.put(ctx, Some(&q), k, k);
        }
        let t2 = ctx.now();
        (t2.saturating_duration_since(t1).as_ns_f64())
            / (t1.saturating_duration_since(t0).as_ns_f64())
    });
    // Each persistent put pays >= 2 pflushes of >= 500 ns: much slower.
    assert!(
        elapsed_ratio > 2.0,
        "persistence costs real time: ratio {elapsed_ratio}"
    );
    let stats = quartz.expect("attached").stats();
    assert!(
        stats.totals.pflushes >= 1_000,
        "pflushes: {}",
        stats.totals.pflushes
    );
}

#[test]
fn kv_benchmark_under_emulation_is_deterministic() {
    let run = || {
        let mem = MachineSpec::new(Architecture::SandyBridge)
            .with_seed(9)
            .build();
        let qc = QuartzConfig::new(NvmTarget::new(300.0));
        let (ops, _) = run_workload(mem, Some(qc), |ctx, _| {
            let store = Arc::new(KvStore::create(ctx, KvConfig::new(NodeId(0))));
            preload(ctx, &store, None, 2_000);
            let cfg = KvBenchConfig {
                preload_keys: 2_000,
                ops_per_thread: 1_000,
                threads: 4,
                ..KvBenchConfig::default()
            };
            let r = run_kv_benchmark(ctx, &store, None, &cfg);
            (r.elapsed.as_ps(), r.gets, r.puts)
        });
        ops
    };
    assert_eq!(run(), run(), "bit-identical repeated runs");
}

#[test]
fn bandwidth_and_latency_compose() {
    // Throttled bandwidth and inflated latency can be emulated together;
    // a latency-bound chase should see the latency, not the throttle.
    let arch = Architecture::IvyBridge;
    let mem = MachineSpec::new(arch).with_seed(5).build();
    let l3 = mem.config().l3.size_bytes;
    let qc = QuartzConfig::new(NvmTarget::new(400.0).with_bandwidth_gbps(5.0))
        .with_max_epoch(Duration::from_us(20));
    let (lat, _) = run_workload(mem, Some(qc), move |ctx, _| {
        run_memlat(ctx, &memlat_cfg(l3, 1, 20_000, NodeId(0))).latency_per_iteration_ns()
    });
    let err = error_pct(lat, 400.0);
    assert!(
        err < 6.0,
        "latency-bound chase unaffected by 5 GB/s throttle: {lat:.1} ns ({err:.2}%)"
    );
}
