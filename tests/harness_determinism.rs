//! Golden tests for the repro harness determinism contract and the CLI.
//!
//! * a quick run of a representative grid experiment must produce
//!   byte-identical console output, CSVs, and JSON row files at
//!   `--jobs 1` and `--jobs 8`;
//! * `repro --list` must cover the whole registry;
//! * unknown experiment names must exit with status 2.

use std::path::Path;
use std::process::Command;

use quartz_bench::harness::{run_experiments, RunOptions};
use quartz_bench::registry;

/// Runs one quick experiment at the given job count, returning the
/// console output (wall-time and manifest lines stripped — those are the
/// only host-dependent parts) plus every result file as (name, bytes).
fn golden_run(name: &str, jobs: usize, dir: &Path) -> (String, Vec<(String, Vec<u8>)>) {
    let _ = std::fs::remove_dir_all(dir);
    let exp = registry::find(name).expect("registered");
    let opts = RunOptions {
        quick: true,
        out_dir: dir.to_path_buf(),
        jobs,
        ..RunOptions::default()
    };
    let mut buf = Vec::new();
    run_experiments(&[exp], &opts, &mut buf).unwrap();
    let console: String = String::from_utf8(buf)
        .unwrap()
        .lines()
        .filter(|l| !l.starts_with('[') && !l.starts_with("manifest:"))
        .map(|l| format!("{l}\n"))
        .collect();

    let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| {
            let e = e.unwrap();
            (
                e.file_name().into_string().unwrap(),
                std::fs::read(e.path()).unwrap(),
            )
        })
        // manifest.json records wall times and the job count by design.
        .filter(|(name, _)| name != "manifest.json")
        .collect();
    files.sort();
    (console, files)
}

#[test]
fn jobs_1_and_jobs_8_are_byte_identical() {
    let base = std::env::temp_dir().join("quartz_bench_golden");
    let (console1, files1) = golden_run("ablation_pcommit", 1, &base.join("j1"));
    let (console8, files8) = golden_run("ablation_pcommit", 8, &base.join("j8"));
    assert_eq!(
        console1, console8,
        "console output must not depend on --jobs"
    );
    assert!(!files1.is_empty(), "expected CSV + JSON row outputs");
    assert_eq!(files1.len(), files8.len());
    for ((n1, b1), (n8, b8)) in files1.iter().zip(&files8) {
        assert_eq!(n1, n8);
        assert_eq!(b1, b8, "{n1} differs between --jobs 1 and --jobs 8");
    }
}

#[test]
fn crash_sweep_is_byte_identical_at_any_jobs_count() {
    // The crash-consistency sweep must uphold the determinism
    // contract: same seed => byte-identical durable-line fingerprints,
    // recovery verdicts, and JSON rows regardless of worker count.
    assert!(
        registry::find("crash_sweep")
            .expect("registered")
            .deterministic(),
        "crash_sweep must advertise determinism"
    );
    let base = std::env::temp_dir().join("quartz_bench_golden_crash");
    let (console1, files1) = golden_run("crash_sweep", 1, &base.join("j1"));
    let (console8, files8) = golden_run("crash_sweep", 8, &base.join("j8"));
    assert_eq!(console1, console8);
    assert!(
        console1.contains("false_negatives=0 false_positives=0"),
        "the sweep verdict line must report a clean checker:\n{console1}"
    );
    assert_eq!(files1.len(), files8.len());
    for ((n1, b1), (n8, b8)) in files1.iter().zip(&files8) {
        assert_eq!(n1, n8);
        assert_eq!(b1, b8, "{n1} differs between --jobs 1 and --jobs 8");
    }
}

#[test]
fn fault_matrix_is_byte_identical_at_any_jobs_count() {
    // The fault matrix runs seeded fault injectors whose decision
    // streams are pure functions of (seed, seam, sequence); the permit-
    // handoff engine makes the sequences themselves deterministic. The
    // experiment must therefore uphold the same byte-identity contract
    // as every virtual-time study — faults included.
    assert!(
        registry::find("fault_matrix")
            .expect("registered")
            .deterministic(),
        "fault_matrix must advertise determinism"
    );
    let base = std::env::temp_dir().join("quartz_bench_golden_faults");
    let (console1, files1) = golden_run("fault_matrix", 1, &base.join("j1"));
    let (console8, files8) = golden_run("fault_matrix", 8, &base.join("j8"));
    assert_eq!(console1, console8);
    assert!(
        console1.contains("bound_violations=0 silent_fault_classes=0"),
        "every cell must hold its declared bound and trip its seam:\n{console1}"
    );
    // The control row proves the A/B methodology: zero drift, zero
    // faults.
    assert!(console1.contains("memlat/none"), "{console1}");
    assert!(!files1.is_empty());
    assert_eq!(files1.len(), files8.len());
    for ((n1, b1), (n8, b8)) in files1.iter().zip(&files8) {
        assert_eq!(n1, n8);
        assert_eq!(b1, b8, "{n1} differs between --jobs 1 and --jobs 8");
    }
    // The JSON rows carry the DegradationStats block for faulted cells.
    let json = files1
        .iter()
        .find(|(n, _)| n.ends_with(".json"))
        .map(|(_, b)| String::from_utf8_lossy(b).into_owned())
        .expect("JSON row file");
    assert!(json.contains("\"degradation\""), "{json}");
    assert!(json.contains("\"total_faults\""), "{json}");
}

#[test]
fn failure_modes_is_byte_identical_and_classifies_all_modes() {
    // The failure-taxonomy self-test deliberately deadlocks, panics, and
    // hangs micro-workloads; the containment machinery must classify
    // each with a named diagnostic, and the printed table must be
    // byte-identical at any --jobs (hang detection is host-timed but its
    // classification output is not).
    assert!(
        registry::find("failure_modes")
            .expect("registered")
            .deterministic(),
        "failure_modes must advertise determinism"
    );
    let base = std::env::temp_dir().join("quartz_bench_golden_failure_modes");
    let (console1, files1) = golden_run("failure_modes", 1, &base.join("j1"));
    let (console8, files8) = golden_run("failure_modes", 8, &base.join("j8"));
    assert_eq!(console1, console8);
    // Every scenario row present, classified as expected.
    for scenario in [
        "clean/control",
        "deadlock/abba",
        "panic/child",
        "hang/virtual_spin",
        "livelock/cas_storm",
        "deadlock/quartz_reap",
        "timeout/recv_expiry",
    ] {
        assert!(
            console1.contains(scenario),
            "missing {scenario}:\n{console1}"
        );
    }
    assert!(
        console1.contains("7/7 scenarios classified as expected"),
        "verdict line must confirm full classification:\n{console1}"
    );
    // The deadlock diagnostics name the actual lock cycle.
    assert!(
        console1.contains("t1 -(m1)-> t2") && console1.contains("t2 -(m0)-> t1"),
        "deadlock cycle must be named edge by edge:\n{console1}"
    );
    // The panic diagnostic carries the original payload; the hang
    // diagnostic names the token holder and configured budget.
    assert!(console1.contains("\"injected fault\""), "{console1}");
    assert!(
        console1.contains("t0 exceeded 25ms watchdog budget"),
        "{console1}"
    );
    // The livelock diagnostic names the spinning thread set and the
    // configured streak threshold.
    assert!(
        console1.contains("t1+t2 failed 400 consecutive CAS without progress"),
        "{console1}"
    );
    // Emulator-side containment after a deadlock with Quartz attached.
    assert!(console1.contains("reaped=3 anomalies=1"), "{console1}");
    assert!(!files1.is_empty());
    assert_eq!(files1.len(), files8.len());
    for ((n1, b1), (n8, b8)) in files1.iter().zip(&files8) {
        assert_eq!(n1, n8);
        assert_eq!(b1, b8, "{n1} differs between --jobs 1 and --jobs 8");
    }
}

#[test]
fn repeated_serial_runs_are_byte_identical() {
    let base = std::env::temp_dir().join("quartz_bench_golden_repeat");
    let (c1, f1) = golden_run("ablation_pcommit", 1, &base.join("a"));
    let (c2, f2) = golden_run("ablation_pcommit", 1, &base.join("b"));
    assert_eq!(c1, c2);
    assert_eq!(f1, f2);
}

#[test]
fn cli_list_covers_the_whole_registry() {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("--list")
        .output()
        .expect("spawn repro");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    for exp in registry::all() {
        assert!(
            stdout
                .lines()
                .any(|l| l.split_whitespace().next() == Some(exp.name())),
            "--list is missing {}",
            exp.name()
        );
    }
    assert_eq!(stdout.lines().count(), registry::all().len());
}

#[test]
fn cli_unknown_experiment_exits_2() {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("fig99")
        .output()
        .expect("spawn repro");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("fig99"));
}

#[test]
fn cli_bad_jobs_value_exits_2() {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--jobs", "many", "table1"])
        .output()
        .expect("spawn repro");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn cli_inject_fail_exits_1_and_marks_exactly_one_failed() {
    // The quarantine contract, end to end: an injected failure must not
    // stop the healthy experiment, must be recorded in the manifest as
    // `status: failed`, and must flip the process exit status to 1.
    let dir = std::env::temp_dir().join("quartz_bench_inject_fail");
    let _ = std::fs::remove_dir_all(&dir);
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "--quick",
            "--jobs",
            "2",
            "--out",
            dir.to_str().unwrap(),
            "--inject-fail",
            "failure_modes",
            "failure_modes",
            "ablation_pcommit",
        ])
        .output()
        .expect("spawn repro");
    assert_eq!(
        out.status.code(),
        Some(1),
        "a quarantined experiment must make repro exit 1: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("failure_modes QUARANTINED"), "{stdout}");
    assert!(stdout.contains("quarantined: failure_modes"), "{stdout}");

    let manifest = std::fs::read_to_string(dir.join("manifest.json")).expect("manifest written");
    assert_eq!(
        manifest.matches("\"status\":\"failed\"").count(),
        1,
        "exactly the injected experiment fails: {manifest}"
    );
    assert_eq!(
        manifest.matches("\"status\":\"ok\"").count(),
        1,
        "the healthy experiment stays ok: {manifest}"
    );
    assert!(
        manifest.contains("injected failure (--inject-fail)"),
        "{manifest}"
    );
    // Quarantined experiments save no result rows; healthy ones do.
    assert!(!dir.join("failure_modes.json").exists());
    assert!(dir.join("ablation_pcommit.json").exists());
}

#[test]
fn cli_inject_fail_unselected_name_exits_2() {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--quick", "--inject-fail", "fig8", "table1"])
        .output()
        .expect("spawn repro");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("fig8"), "{stderr}");
}

/// Blanks the value after every host-timing key in a `BENCH_*.json`
/// document, leaving the deterministic fields (access counts, config
/// lists, trace event counts, the equivalence flag) for comparison.
fn strip_timing_fields(json: &str) -> String {
    const KEYS: [&str; 5] = [
        "\"wall_ms\":",
        "\"accesses_per_sec\":",
        "\"live_ms\":",
        "\"replay_ms\":",
        "\"speedup\":",
    ];
    let mut out = String::new();
    let mut rest = json;
    'outer: while !rest.is_empty() {
        for k in KEYS {
            if rest.starts_with(k) {
                out.push_str(k);
                out.push('_');
                rest = &rest[k.len()..];
                let end = rest.find([',', '}']).unwrap_or(rest.len());
                rest = &rest[end..];
                continue 'outer;
            }
        }
        let mut chars = rest.chars();
        out.push(chars.next().unwrap());
        rest = chars.as_str();
    }
    out
}

#[test]
fn kv_service_bench_file_is_byte_identical_at_any_jobs_count() {
    // The open-loop service curves are pure virtual-time measurements,
    // so unlike the host-timed benches the whole BENCH file — latency
    // percentiles included — upholds the byte-identity contract.
    let exp = registry::find("kv_service").expect("registered");
    assert!(exp.deterministic(), "kv_service must advertise determinism");
    let base = std::env::temp_dir().join("quartz_bench_golden_kv_service");
    let (console1, files1) = golden_run("kv_service", 1, &base.join("j1"));
    let (console8, files8) = golden_run("kv_service", 8, &base.join("j8"));
    assert_eq!(console1, console8);
    assert!(!files1.is_empty());
    assert_eq!(files1.len(), files8.len());
    for ((n1, b1), (n8, b8)) in files1.iter().zip(&files8) {
        assert_eq!(n1, n8);
        assert_eq!(b1, b8, "{n1} differs between --jobs 1 and --jobs 8");
    }
    let (_, bytes) = files1
        .iter()
        .find(|(n, _)| n == "BENCH_kv_service.json")
        .expect("BENCH_kv_service.json emitted");
    let bench = String::from_utf8(bytes.clone()).unwrap();
    for needle in [
        "\"schema\":2",
        "\"bench\":\"kv_service\"",
        "\"nvm_target\":\"optane_dcpmm\"",
        "\"memory\":\"dram\"",
        "\"memory\":\"optane\"",
        "\"p999_ns\":",
    ] {
        assert!(bench.contains(needle), "missing {needle} in {bench}");
    }
    // No host-timed fields: the timing scrubber must be a no-op here.
    assert_eq!(
        strip_timing_fields(&bench),
        bench,
        "kv_service must not record host timing in its bench file"
    );
    let manifest = std::fs::read_to_string(base.join("j8").join("manifest.json")).unwrap();
    assert!(
        manifest.contains("\"benches\":[\"BENCH_kv_service.json\"]"),
        "{manifest}"
    );
}

#[test]
fn overload_matrix_bench_file_is_byte_identical_at_any_jobs_count() {
    // The overload matrix layers seeded service faults, retries with
    // seeded backoff, and breaker state on top of the service scenario;
    // every one of those decisions is a pure function of the seed, so
    // the whole matrix — counters, goodput, percentiles — upholds the
    // byte-identity contract.
    let exp = registry::find("overload_matrix").expect("registered");
    assert!(
        exp.deterministic(),
        "overload_matrix must advertise determinism"
    );
    let base = std::env::temp_dir().join("quartz_bench_golden_overload");
    let (console1, files1) = golden_run("overload_matrix", 1, &base.join("j1"));
    let (console8, files8) = golden_run("overload_matrix", 8, &base.join("j8"));
    assert_eq!(console1, console8);
    assert!(!files1.is_empty());
    assert_eq!(files1.len(), files8.len());
    for ((n1, b1), (n8, b8)) in files1.iter().zip(&files8) {
        assert_eq!(n1, n8);
        assert_eq!(b1, b8, "{n1} differs between --jobs 1 and --jobs 8");
    }
    let (_, bytes) = files1
        .iter()
        .find(|(n, _)| n == "BENCH_overload.json")
        .expect("BENCH_overload.json emitted");
    let bench = String::from_utf8(bytes.clone()).unwrap();
    for needle in [
        "\"bench\":\"overload_matrix\"",
        "\"mode\":\"unprotected\"",
        "\"mode\":\"protected\"",
        "\"fault\":\"slow_worker\"",
        "\"fault\":\"stuck_worker\"",
        "\"goodput_rps\":",
        "\"conservation_ok\":true",
        "\"fault_bounds\":",
    ] {
        assert!(bench.contains(needle), "missing {needle} in {bench}");
    }
    assert!(
        !bench.contains("\"conservation_ok\":false"),
        "every cell must conserve requests:\n{bench}"
    );
    assert_eq!(
        strip_timing_fields(&bench),
        bench,
        "overload_matrix must not record host timing in its bench file"
    );
}

#[test]
fn lockfree_sweep_is_byte_identical_at_any_jobs_count() {
    // The lock-free sweep replays recorded executions of the
    // detectable stack and queue at derived crash points (winning
    // CASes included); every quantity is virtual-time, so the console
    // table, the JSON rows, and the whole BENCH file uphold the
    // byte-identity contract.
    let exp = registry::find("lockfree_sweep").expect("registered");
    assert!(
        exp.deterministic(),
        "lockfree_sweep must advertise determinism"
    );
    let base = std::env::temp_dir().join("quartz_bench_golden_lockfree");
    let (console1, files1) = golden_run("lockfree_sweep", 1, &base.join("j1"));
    let (console8, files8) = golden_run("lockfree_sweep", 8, &base.join("j8"));
    assert_eq!(console1, console8);
    assert!(
        console1.contains("false_negatives=0 false_positives=0"),
        "the sweep verdict line must report a clean checker:\n{console1}"
    );
    assert!(!files1.is_empty());
    assert_eq!(files1.len(), files8.len());
    for ((n1, b1), (n8, b8)) in files1.iter().zip(&files8) {
        assert_eq!(n1, n8);
        assert_eq!(b1, b8, "{n1} differs between --jobs 1 and --jobs 8");
    }
    let (_, bytes) = files1
        .iter()
        .find(|(n, _)| n == "BENCH_lockfree.json")
        .expect("BENCH_lockfree.json emitted");
    let bench = String::from_utf8(bytes.clone()).unwrap();
    for needle in [
        "\"schema\":1",
        "\"bench\":\"lockfree_sweep\"",
        "\"structure\":\"treiber_stack\"",
        "\"structure\":\"ms_queue\"",
        "\"variant\":\"missing_flush\"",
        "\"variant\":\"lost_checkpoint\"",
        "\"false_negatives\":0",
        "\"false_positives\":0",
    ] {
        assert!(bench.contains(needle), "missing {needle} in {bench}");
    }
    // No host-timed fields: the timing scrubber must be a no-op here.
    assert_eq!(
        strip_timing_fields(&bench),
        bench,
        "lockfree_sweep must not record host timing in its bench file"
    );
    let manifest = std::fs::read_to_string(base.join("j8").join("manifest.json")).unwrap();
    assert!(
        manifest.contains("\"benches\":[\"BENCH_lockfree.json\"]"),
        "{manifest}"
    );
}

#[test]
fn asymmetry_ablation_is_byte_identical_at_any_jobs_count() {
    // The asymmetry ablation is pure virtual time (jitter off, perfect
    // counters, fixed seed), so the console table and the whole
    // BENCH_asymmetry.json — deltas and write terms included — uphold
    // the byte-identity contract.
    let exp = registry::find("asymmetry_ablation").expect("registered");
    assert!(
        exp.deterministic(),
        "asymmetry_ablation must advertise determinism"
    );
    let base = std::env::temp_dir().join("quartz_bench_golden_asymmetry");
    let (console1, files1) = golden_run("asymmetry_ablation", 1, &base.join("j1"));
    let (console8, files8) = golden_run("asymmetry_ablation", 8, &base.join("j8"));
    assert_eq!(console1, console8);
    assert!(!files1.is_empty());
    assert_eq!(files1.len(), files8.len());
    for ((n1, b1), (n8, b8)) in files1.iter().zip(&files8) {
        assert_eq!(n1, n8);
        assert_eq!(b1, b8, "{n1} differs between --jobs 1 and --jobs 8");
    }
    let (_, bytes) = files1
        .iter()
        .find(|(n, _)| n == "BENCH_asymmetry.json")
        .expect("BENCH_asymmetry.json emitted");
    let bench = String::from_utf8(bytes.clone()).unwrap();
    for needle in [
        "\"schema\":1",
        "\"bench\":\"asymmetry_ablation\"",
        "\"kind\":\"read_only\"",
        "\"kind\":\"write_heavy\"",
        "\"write_term_ns_asym\":",
    ] {
        assert!(bench.contains(needle), "missing {needle} in {bench}");
    }
    // The read-only control cell accrues exactly zero write term even
    // under the asymmetric model: no stores, nothing to price.
    assert!(
        bench.contains("\"kind\":\"read_only\",\"sym_ns\""),
        "control cell present: {bench}"
    );
    let control = bench
        .split("\"kind\":\"read_only\"")
        .nth(1)
        .expect("control cell");
    let control = &control[..control.find('}').unwrap()];
    assert!(
        control.contains("\"write_term_ns_asym\":0"),
        "control cell write term must be exactly zero: {control}"
    );
    // No host-timed fields: the timing scrubber must be a no-op here.
    assert_eq!(
        strip_timing_fields(&bench),
        bench,
        "asymmetry_ablation must not record host timing in its bench file"
    );
    let manifest = std::fs::read_to_string(base.join("j8").join("manifest.json")).unwrap();
    assert!(
        manifest.contains("\"benches\":[\"BENCH_asymmetry.json\"]"),
        "{manifest}"
    );
}

#[test]
fn cli_filter_splits_commas_before_selection() {
    // --inject-fail validates its name against the selected set before
    // running anything, so it doubles as a cheap probe of what a
    // comma-separated --filter actually chose.
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "--quick",
            "--filter",
            "ablation_pcommit,failure",
            "--inject-fail",
            "table1",
        ])
        .output()
        .expect("spawn repro");
    assert_eq!(
        out.status.code(),
        Some(2),
        "'table1' must not be selected by --filter ablation_pcommit,failure"
    );
    // The probe passes once the second comma term matches it (the
    // injected failure quarantines failure_modes before it runs, so the
    // run stays cheap and exits 1, not 2).
    let dir = std::env::temp_dir().join("quartz_bench_filter_probe");
    let _ = std::fs::remove_dir_all(&dir);
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "--quick",
            "--jobs",
            "2",
            "--out",
            dir.to_str().unwrap(),
            "--filter",
            "ablation_pcommit,failure",
            "--inject-fail",
            "failure_modes",
        ])
        .output()
        .expect("spawn repro");
    assert_eq!(
        out.status.code(),
        Some(1),
        "'failure_modes' must be selected by the second filter term: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("ablation_pcommit"), "{stdout}");
    assert!(stdout.contains("failure_modes QUARANTINED"), "{stdout}");
}

#[test]
fn memsim_throughput_bench_file_is_deterministic_modulo_timing() {
    // The experiment is host-timed, so it opts out of the byte-identity
    // contract — but everything in BENCH_memsim.json except the timing
    // numbers (access counts, mix names, sweep configs, trace event
    // count, the replay-equivalence flag) must still be identical at
    // any --jobs count.
    let exp = registry::find("memsim_throughput").expect("registered");
    assert!(!exp.deterministic(), "host-timed experiments opt out");
    let base = std::env::temp_dir().join("quartz_bench_golden_memsim");
    let (_, files1) = golden_run("memsim_throughput", 1, &base.join("j1"));
    let (_, files8) = golden_run("memsim_throughput", 8, &base.join("j8"));
    let bench_of = |files: &[(String, Vec<u8>)]| -> String {
        let (_, bytes) = files
            .iter()
            .find(|(n, _)| n == "BENCH_memsim.json")
            .expect("BENCH_memsim.json emitted");
        String::from_utf8(bytes.clone()).unwrap()
    };
    let (b1, b8) = (bench_of(&files1), bench_of(&files8));
    for b in [&b1, &b8] {
        for needle in [
            "\"schema\":1",
            "\"mix\":\"l1_hit\"",
            "\"mix\":\"l3_miss\"",
            "\"mix\":\"stream\"",
            "\"equivalent\":true",
        ] {
            assert!(b.contains(needle), "missing {needle} in {b}");
        }
    }
    assert_eq!(
        strip_timing_fields(&b1),
        strip_timing_fields(&b8),
        "non-timing BENCH fields must not depend on --jobs"
    );
    // The manifest must index the bench file.
    let manifest = std::fs::read_to_string(base.join("j8").join("manifest.json")).unwrap();
    assert!(
        manifest.contains("\"benches\":[\"BENCH_memsim.json\"]"),
        "{manifest}"
    );
}
