//! Property-based tests over the core data structures and model
//! invariants (proptest).

use proptest::prelude::*;

use quartz::model;
use quartz_memsim::cache::{Cache, Lookup};
use quartz_memsim::{Addr, CacheGeometry, NumaAllocator};
use quartz_platform::pmu::{EventKind, FidelityModel};
use quartz_platform::time::{Duration, Frequency, SimTime};
use quartz_platform::{Architecture, NodeId};
use quartz_workloads::zipf::Zipf;

proptest! {
    // ------------------------------------------------------------------
    // Time arithmetic.
    // ------------------------------------------------------------------

    #[test]
    fn time_add_sub_roundtrips(base in 0u64..1 << 50, delta in 0u64..1 << 40) {
        let t = SimTime::from_ps(base);
        let d = Duration::from_ps(delta);
        prop_assert_eq!((t + d).duration_since(t), d);
        prop_assert_eq!((t + d) - d, t);
    }

    #[test]
    fn cycle_conversion_is_nearly_inverse(mhz in 800u64..4_000, cycles in 0u64..1 << 40) {
        let f = Frequency::from_mhz(mhz);
        let back = f.duration_to_cycles(f.cycles_to_duration(cycles));
        // Integer rounding may lose at most one cycle.
        prop_assert!(back <= cycles && cycles - back <= 1);
    }

    #[test]
    fn duration_from_f64_is_monotone(a in 0.0f64..1e9, b in 0.0f64..1e9) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(Duration::from_ns_f64(lo) <= Duration::from_ns_f64(hi));
    }

    // ------------------------------------------------------------------
    // Addresses.
    // ------------------------------------------------------------------

    #[test]
    fn addr_node_encoding_roundtrips(node in 0usize..16, offset in 0u64..1 << 40) {
        let a = Addr::on_node(NodeId(node), offset);
        prop_assert_eq!(a.node(), NodeId(node));
        prop_assert_eq!(a.offset(), offset);
    }

    #[test]
    fn addr_line_base_is_aligned(node in 0usize..4, offset in 0u64..1 << 30) {
        let a = Addr::on_node(NodeId(node), offset);
        prop_assert_eq!(a.line_base().offset() % 64, 0);
        prop_assert_eq!(a.line(), a.line_base().line());
    }

    // ------------------------------------------------------------------
    // Cache invariants.
    // ------------------------------------------------------------------

    #[test]
    fn cache_occupancy_never_exceeds_capacity(
        ways in 1usize..8,
        sets_log2 in 0u32..5,
        accesses in proptest::collection::vec(0u64..1 << 16, 1..200),
    ) {
        let sets = 1u64 << sets_log2;
        let size = sets * ways as u64 * 64;
        let mut cache = Cache::new(CacheGeometry::new(size, ways));
        let capacity = (sets as usize) * ways;
        for off in accesses {
            let a = Addr::on_node(NodeId(0), off * 64);
            if cache.touch(a) == Lookup::Miss {
                cache.fill(a, off % 3 == 0);
            }
            prop_assert!(cache.occupancy() <= capacity);
            // A just-filled line is always present.
            prop_assert!(cache.contains(a));
        }
    }

    #[test]
    fn cache_invalidate_removes_line(offsets in proptest::collection::vec(0u64..256, 1..50)) {
        let mut cache = Cache::new(CacheGeometry::new(4 * 1024, 4));
        for &off in &offsets {
            let a = Addr::on_node(NodeId(0), off * 64);
            cache.fill(a, false);
            cache.invalidate(a);
            prop_assert!(!cache.contains(a));
        }
    }

    // ------------------------------------------------------------------
    // Allocator invariants.
    // ------------------------------------------------------------------

    #[test]
    fn allocations_never_overlap(sizes in proptest::collection::vec(1u64..10_000, 1..40)) {
        let alloc = NumaAllocator::new(1, 1 << 30, false);
        let mut regions: Vec<(u64, u64)> = Vec::new();
        for bytes in sizes {
            let a = alloc.alloc(NodeId(0), bytes).unwrap();
            let start = a.offset();
            for &(s, e) in &regions {
                prop_assert!(start + bytes <= s || start >= e, "overlap");
            }
            regions.push((start, start + bytes));
        }
    }

    #[test]
    fn free_then_alloc_same_size_reuses(bytes in 64u64..100_000) {
        let alloc = NumaAllocator::new(1, 1 << 30, false);
        let a = alloc.alloc(NodeId(0), bytes).unwrap();
        alloc.free(a).unwrap();
        let b = alloc.alloc(NodeId(0), bytes).unwrap();
        prop_assert_eq!(a, b);
    }

    // ------------------------------------------------------------------
    // Analytic model invariants.
    // ------------------------------------------------------------------

    #[test]
    fn eq3_output_is_bounded_by_input_stalls(
        stalls in 0.0f64..1e12,
        hits in 0.0f64..1e9,
        misses in 0.0f64..1e9,
        w in 1.0f64..20.0,
    ) {
        let out = model::stalls_from_counters(stalls, hits, misses, w);
        prop_assert!(out >= 0.0);
        prop_assert!(out <= stalls * (1.0 + 1e-12));
    }

    #[test]
    fn eq2_delay_is_nonnegative_and_linear_in_target(
        stall_ns in 0.0f64..1e9,
        dram in 50.0f64..200.0,
        extra in 0.0f64..2_000.0,
    ) {
        let d1 = model::delay_stall_based_ns(stall_ns, dram, dram + extra);
        prop_assert!(d1 >= 0.0);
        let d2 = model::delay_stall_based_ns(stall_ns, dram, dram + 2.0 * extra);
        prop_assert!(d2 >= d1);
        // Below-substrate targets clamp to zero, never negative.
        prop_assert_eq!(model::delay_stall_based_ns(stall_ns, dram, dram - 1.0), 0.0);
    }

    #[test]
    fn stall_split_is_a_partition(
        total in 0.0f64..1e9,
        m_loc in 0u64..1_000_000,
        m_rem in 0u64..1_000_000,
        lat_loc in 50.0f64..150.0,
        lat_rem in 150.0f64..300.0,
    ) {
        let rem = model::split_remote_stall_ns(total, m_loc, m_rem, lat_loc, lat_rem);
        prop_assert!(rem >= 0.0);
        prop_assert!(rem <= total * (1.0 + 1e-12));
        // All-remote gets everything; all-local gets nothing.
        if m_loc == 0 && m_rem > 0 {
            prop_assert!((rem - total).abs() <= total * 1e-9 + 1e-9);
        }
        if m_rem == 0 {
            prop_assert_eq!(rem, 0.0);
        }
    }

    /// The asymmetric write model degenerates *exactly* to the symmetric
    /// one when write and read latency coincide: by linearity of Eq. 2,
    /// pricing load stalls and store-buffer stalls separately at the
    /// same latency equals pricing their sum once. This is the
    /// regression guard for the symmetric-byte-identity contract.
    #[test]
    fn asymmetric_delay_degenerates_when_latencies_match(
        ldm_ns in 0.0f64..1e9,
        sb_ns in 0.0f64..1e9,
        dram in 50.0f64..200.0,
        extra in 0.0f64..2_000.0,
    ) {
        let nvm = dram + extra;
        let asym = model::delay_asymmetric_ns(ldm_ns, sb_ns, dram, nvm, nvm);
        let sym = model::delay_stall_based_ns(ldm_ns + sb_ns, dram, nvm);
        let tol = sym.abs() * 1e-12 + 1e-9;
        prop_assert!((asym - sym).abs() <= tol, "{asym} != {sym}");
    }

    /// The write term is independent of the read latency and linear in
    /// the write-latency difference — read- and write-side pricing never
    /// bleed into each other.
    #[test]
    fn asymmetric_terms_are_independent(
        ldm_ns in 0.0f64..1e8,
        sb_ns in 0.0f64..1e8,
        dram in 50.0f64..200.0,
        r_extra in 0.0f64..2_000.0,
        w_extra in 0.0f64..2_000.0,
    ) {
        let d = model::delay_asymmetric_ns(ldm_ns, sb_ns, dram, dram + r_extra, dram + w_extra);
        let read = model::delay_stall_based_ns(ldm_ns, dram, dram + r_extra);
        let write = model::delay_stall_based_ns(sb_ns, dram, dram + w_extra);
        prop_assert!((d - (read + write)).abs() <= (read + write).abs() * 1e-12 + 1e-9);
        // A write latency at or below the substrate zeroes only the
        // write term.
        let d0 = model::delay_asymmetric_ns(ldm_ns, sb_ns, dram, dram + r_extra, dram);
        prop_assert!((d0 - read).abs() <= read.abs() * 1e-12 + 1e-9);
    }

    /// §3.3 latency-weighted split: the local and remote shares are an
    /// *exact* partition of the total stall time (what Eq. 2 charges is
    /// never more or less than what was measured), and the remote share
    /// grows with the remote latency — a slower remote memory soaks up
    /// a larger fraction of the same stall time.
    #[test]
    fn stall_split_shares_sum_and_remote_share_is_monotone_in_latency(
        total in 0.0f64..1e9,
        m_loc in 1u64..1_000_000,
        m_rem in 1u64..1_000_000,
        lat_loc in 50.0f64..150.0,
        lat_rem in 150.0f64..300.0,
        bump in 1.0f64..500.0,
    ) {
        let rem = model::split_remote_stall_ns(total, m_loc, m_rem, lat_loc, lat_rem);
        // The local share is the complement: swap the roles.
        let loc = model::split_remote_stall_ns(total, m_rem, m_loc, lat_rem, lat_loc);
        prop_assert!(
            (rem + loc - total).abs() <= total * 1e-9 + 1e-9,
            "shares must partition the total: {rem} + {loc} != {total}"
        );
        // Remote share is monotone in the remote latency.
        let rem_slower = model::split_remote_stall_ns(total, m_loc, m_rem, lat_loc, lat_rem + bump);
        prop_assert!(rem_slower >= rem - 1e-9);
        // Degenerate cases are exact, not approximate.
        prop_assert_eq!(model::split_remote_stall_ns(total, m_loc, 0, lat_loc, lat_rem), 0.0);
        prop_assert_eq!(model::split_remote_stall_ns(0.0, m_loc, m_rem, lat_loc, lat_rem), 0.0);
    }

    /// The degradation clamp chain: whatever garbage `LDM_STALL` the
    /// (possibly wrapped, skewed, or mis-read) counters produce, the
    /// injected delay lands in `[0, budget × (NVM/DRAM − 1)]` — the
    /// physical maximum if every budget cycle were a memory stall.
    #[test]
    fn clamped_delay_is_within_epoch_budget(
        ldm_stall in -1e6f64..1e18,
        span in 0u64..1 << 40,
        compute in 0u64..1 << 20,
        rdpmc in 0u64..1 << 16,
        mhz in 800u64..4_000,
        dram in 50.0f64..200.0,
        extra in 0.0f64..2_000.0,
    ) {
        let nvm = dram + extra;
        let budget_cycles = model::epoch_budget_cycles(span, compute, rdpmc);
        let (stall, _) = model::clamp_stall_cycles(ldm_stall, budget_cycles);
        prop_assert!(stall >= 0.0 && stall <= budget_cycles as f64);
        let f = Frequency::from_mhz(mhz);
        let budget_ns = f.cycles_to_duration(budget_cycles).as_ns_f64();
        let stall_ns = f.cycles_to_duration(stall.round() as u64).as_ns_f64();
        let raw = model::delay_stall_based_ns(stall_ns, dram, nvm);
        let (delay, _) = model::clamp_delay_ns(raw, budget_ns, dram, nvm);
        let cap = budget_ns * (nvm / dram - 1.0);
        prop_assert!(delay >= 0.0);
        prop_assert!(delay <= cap * (1.0 + 1e-9) + 1e-9, "{delay} > {cap}");
        // And a clamped value is a fixed point: clamping twice is
        // clamping once.
        let (again, fired) = model::clamp_delay_ns(delay, budget_ns, dram, nvm);
        prop_assert_eq!(again, delay);
        prop_assert!(!fired || delay == 0.0);
    }

    /// 48-bit wrap arithmetic: masked wrapping subtraction recovers the
    /// true increment for any park position and increment < 2^48.
    #[test]
    fn counter_wrap_math_recovers_increment(
        park in 0u64..(1u64 << 48),
        inc in 0u64..(1u64 << 47),
    ) {
        use quartz_platform::pmu::COUNTER_MASK;
        let now = park.wrapping_add(inc) & COUNTER_MASK;
        let delta = now.wrapping_sub(park) & COUNTER_MASK;
        prop_assert_eq!(delta, inc);
    }

    #[test]
    fn throttle_register_is_monotone(peak in 1.0f64..100.0, t1 in 0.0f64..100.0, t2 in 0.0f64..100.0) {
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        prop_assert!(
            model::throttle_register_for(lo, peak) <= model::throttle_register_for(hi, peak)
        );
        prop_assert!(model::throttle_register_for(hi, peak) <= 0xFFF);
        prop_assert!(model::throttle_register_for(lo, peak) >= 1);
    }

    // ------------------------------------------------------------------
    // Counter fidelity.
    // ------------------------------------------------------------------

    #[test]
    fn fidelity_skew_is_bounded(seed in 0u64..1 << 32, raw in 1u64..1 << 40) {
        for arch in Architecture::ALL {
            let params = arch.params();
            let m = FidelityModel::new(params, seed);
            let read = m.distort(EventKind::StallsL2Pending, raw) as f64;
            let rel = (read - raw as f64).abs() / raw as f64;
            // bias + ripple never exceeds 1.15x the amplitude.
            prop_assert!(rel <= 1.2 * params.stall_counter_skew + 1.0 / raw as f64);
        }
    }

    #[test]
    fn fidelity_is_deterministic(seed in 0u64..1 << 32, raw in 0u64..1 << 40) {
        let m = FidelityModel::new(Architecture::Haswell.params(), seed);
        prop_assert_eq!(
            m.distort(EventKind::L3Hit, raw),
            m.distort(EventKind::L3Hit, raw)
        );
    }

    // ------------------------------------------------------------------
    // Workload generators.
    // ------------------------------------------------------------------

    #[test]
    fn zipf_stays_in_range(n in 1u64..100_000, theta in 0.0f64..0.99, seed in 0u64..1 << 32) {
        let mut z = Zipf::new(n, theta, seed);
        for _ in 0..100 {
            prop_assert!(z.sample() < n);
        }
    }
}

// ----------------------------------------------------------------------
// Model-based tests: the set-associative cache against a reference LRU.
// ----------------------------------------------------------------------

/// Reference model: per-set vectors in exact LRU order.
#[derive(Default)]
struct RefCache {
    sets: u64,
    ways: usize,
    data: std::collections::HashMap<u64, Vec<(u64, bool)>>,
}

impl RefCache {
    fn new(sets: u64, ways: usize) -> Self {
        RefCache {
            sets,
            ways,
            data: Default::default(),
        }
    }

    fn set_of(&self, line: u64) -> u64 {
        line % self.sets
    }

    fn touch(&mut self, line: u64, dirty: bool) -> bool {
        let set = self.data.entry(self.set_of(line)).or_default();
        if let Some(pos) = set.iter().position(|(l, _)| *l == line) {
            let (l, d) = set.remove(pos);
            set.push((l, d || dirty));
            true
        } else {
            false
        }
    }

    fn fill(&mut self, line: u64, dirty: bool) -> Option<(u64, bool)> {
        let ways = self.ways;
        let set = self.data.entry(self.set_of(line)).or_default();
        if set.iter().any(|(l, _)| *l == line) {
            return None;
        }
        let evicted = if set.len() >= ways {
            Some(set.remove(0))
        } else {
            None
        };
        set.push((line, dirty));
        evicted
    }
}

proptest! {
    #[test]
    fn cache_matches_reference_lru_model(
        ways in 1usize..6,
        sets_log2 in 0u32..4,
        ops in proptest::collection::vec((0u64..128, proptest::bool::ANY), 1..300),
    ) {
        let sets = 1u64 << sets_log2;
        let mut cache = Cache::new(CacheGeometry::new(sets * ways as u64 * 64, ways));
        let mut model = RefCache::new(sets, ways);
        for (lineno, dirty) in ops {
            let a = Addr::on_node(NodeId(0), lineno * 64);
            let line = a.line();
            let hit_real = if dirty {
                cache.touch_dirty(a) == Lookup::Hit
            } else {
                cache.touch(a) == Lookup::Hit
            };
            let hit_model = model.touch(line, dirty);
            prop_assert_eq!(hit_real, hit_model, "hit/miss diverged on line {}", lineno);
            if !hit_real {
                let ev_real = cache.fill(a, dirty);
                let ev_model = model.fill(line, dirty);
                match (ev_real, ev_model) {
                    (None, None) => {}
                    (Some(r), Some(m)) => {
                        prop_assert_eq!(r.line, m.0, "evicted different victims");
                        prop_assert_eq!(r.dirty, m.1, "victim dirtiness diverged");
                    }
                    (r, m) => prop_assert!(false, "eviction mismatch: {:?} vs {:?}", r, m),
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Scheduler: mutual exclusion and determinism under random workloads.
    // ------------------------------------------------------------------

    #[test]
    fn mutex_never_admits_two_holders(
        thread_work in proptest::collection::vec(
            proptest::collection::vec(1u64..2_000, 1..12),
            2..5,
        ),
    ) {
        use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
        use std::sync::Arc;
        let mem = quartz_bench::MachineSpec::new(Architecture::IvyBridge)
            .with_perfect_counters()
            .build();
        let engine = quartz_threadsim::Engine::new(mem);
        let inside = Arc::new(AtomicBool::new(false));
        let violations = Arc::new(AtomicU64::new(0));
        let i2 = Arc::clone(&inside);
        let v2 = Arc::clone(&violations);
        engine.run(move |ctx| {
            let m = ctx.mutex_new();
            let mut kids = Vec::new();
            for work in thread_work {
                let inside = Arc::clone(&i2);
                let violations = Arc::clone(&v2);
                kids.push(ctx.spawn(move |c| {
                    for ns in work {
                        c.mutex_lock(m);
                        if inside.swap(true, Ordering::SeqCst) {
                            violations.fetch_add(1, Ordering::SeqCst);
                        }
                        c.compute_ns(ns as f64);
                        inside.store(false, Ordering::SeqCst);
                        c.mutex_unlock(m);
                        c.compute_ns(7.0);
                    }
                }));
            }
            for k in kids {
                ctx.join(k);
            }
        });
        prop_assert_eq!(violations.load(std::sync::atomic::Ordering::SeqCst), 0);
    }

    // ------------------------------------------------------------------
    // Persistence primitives: the §6 ordering invariant.
    // ------------------------------------------------------------------

    /// For ANY store trace, making it durable with pessimistic
    /// `pflush` (spin per flush) must cost at least as much virtual
    /// time as the `pflush_opt`…`pcommit` pair (announce, overlap,
    /// drain once), and both must cost a strictly positive amount.
    /// Bonus dedupe property: the pending-flush set never exceeds the
    /// number of distinct lines and is fully drained by `pcommit`.
    #[test]
    fn pessimistic_flush_never_beats_opt_commit(
        lines in proptest::collection::vec(0u64..64, 1..32),
    ) {
        use quartz::{NvmTarget, QuartzConfig};

        let run = |optimized: bool, lines: Vec<u64>| -> (u64, usize, usize) {
            let mem = quartz_bench::MachineSpec::new(Architecture::IvyBridge)
                .with_perfect_counters()
                .with_no_jitter()
                .build();
            // A huge epoch keeps the monitor out of the measurement.
            let cfg = QuartzConfig::new(NvmTarget::new(300.0).with_write_delay_ns(450.0))
                .with_max_epoch(Duration::from_ms(100));
            let (out, _) = quartz_bench::run_workload(mem, Some(cfg), move |ctx, q| {
                let q = q.expect("quartz attached");
                let buf = q.pmalloc(ctx, 64 * 64).expect("pmalloc");
                let t0 = ctx.now();
                let mut pending_peak = 0usize;
                for &l in &lines {
                    let a = buf.offset_by(l * 64);
                    ctx.store(a);
                    if optimized {
                        q.pflush_opt(ctx, a);
                        pending_peak = pending_peak.max(q.pending_flushes(ctx));
                    } else {
                        q.pflush(ctx, a);
                    }
                }
                if optimized {
                    q.pcommit(ctx);
                }
                (
                    ctx.now().duration_since(t0).as_ps(),
                    pending_peak,
                    q.pending_flushes(ctx),
                )
            });
            out
        };

        let distinct = lines.iter().collect::<std::collections::HashSet<_>>().len();
        let (pessimistic_ps, _, _) = run(false, lines.clone());
        let (opt_ps, pending_peak, pending_after) = run(true, lines);
        prop_assert!(pessimistic_ps > 0 && opt_ps > 0);
        prop_assert!(
            pessimistic_ps >= opt_ps,
            "pflush trace ({pessimistic_ps} ps) must not be cheaper than \
             pflush_opt+pcommit ({opt_ps} ps)"
        );
        prop_assert!(
            pending_peak <= distinct,
            "pending flushes ({pending_peak}) exceeded distinct lines ({distinct})"
        );
        prop_assert_eq!(pending_after, 0, "pcommit must drain the pending set");
    }

    // ------------------------------------------------------------------
    // Trace record/replay fidelity.
    // ------------------------------------------------------------------

    /// For ANY access sequence — loads, batches, stores, streaming
    /// stores, flushes — replaying the recorded trace into a fresh
    /// machine of the same configuration reproduces `MemStats`
    /// byte-identically, and the compact binary encoding round-trips.
    #[test]
    fn trace_replay_reproduces_stats(
        ops in proptest::collection::vec((0u8..6, 0u64..2_048, 0u64..2), 1..250),
    ) {
        let build = || {
            let mem = quartz_bench::MachineSpec::new(Architecture::IvyBridge)
                .with_seed(9)
                .build();
            let base = mem.alloc(NodeId(0), 2_048 * 64).unwrap();
            (mem, base)
        };
        let (live, base) = build();
        live.start_recording();
        let mut now = SimTime::ZERO;
        for &(op, line, core) in &ops {
            let a = base.offset_by(line * 64);
            let core = core as usize;
            let d = match op {
                0 => live.load(core, a, now).stall,
                1 => live.load_batch(
                    core,
                    &[a, base.offset_by(((line + 1) % 2_048) * 64)],
                    now,
                ),
                2 => live.store(core, a, now),
                3 => live.store_stream(core, a, now),
                4 => live.flush(core, a, now),
                _ => live.flush_opt(core, a, now).0,
            };
            now += d + Duration::from_ns(1);
        }
        let trace = live.stop_recording();
        let decoded = quartz_memsim::Trace::decode(&trace.encode()).expect("roundtrip");
        prop_assert_eq!(decoded.len(), trace.len());
        let (fresh, _) = build();
        decoded.replay(&fresh);
        prop_assert_eq!(live.stats(), fresh.stats());
    }

    #[test]
    fn simulation_end_time_is_deterministic(
        seeds in proptest::collection::vec(0u64..1_000, 2..4),
    ) {
        let run = |seeds: Vec<u64>| {
            let mem = quartz_bench::MachineSpec::new(Architecture::Haswell)
                .with_seed(42)
                .build();
            let engine = quartz_threadsim::Engine::new(mem);
            engine
                .run(move |ctx| {
                    let m = ctx.mutex_new();
                    let mut kids = Vec::new();
                    for s in seeds {
                        kids.push(ctx.spawn(move |c| {
                            let a = c.alloc_local(1 << 14);
                            for k in 0..40u64 {
                                c.mutex_lock(m);
                                c.load(a.offset_by(((k * 31 + s) % 256) * 64));
                                c.mutex_unlock(m);
                            }
                        }));
                    }
                    for k in kids {
                        ctx.join(k);
                    }
                })
                .end_time
                .as_ps()
        };
        prop_assert_eq!(run(seeds.clone()), run(seeds));
    }
}
